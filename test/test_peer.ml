(* --mode peer: typed encoder-fault transforms, the scripted cooperating
   peer, supervised desync recovery, and the peer campaign determinism
   contracts (fault-free goldens, kill+resume, fleet domain identity). *)

open Nyx_core
module Fault = Nyx_resilience.Fault
module Plan = Nyx_resilience.Plan
module Backoff = Nyx_resilience.Backoff
module Atomic_io = Nyx_resilience.Atomic_io
module Peer_fault = Nyx_peer.Peer_fault
module Peer_script = Nyx_peer.Peer_script

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let b = Bytes.of_string

let ok = function
  | Ok v -> v
  | Error m -> Alcotest.fail ("expected Ok, got Error: " ^ m)

let entry name = Option.get (Nyx_targets.Registry.find name)
let script name = Option.get (Peer_script.find name)

let peer_config =
  {
    Campaign.default_config with
    Campaign.budget_ns = 1_500_000_000;
    max_execs = 1_500;
    policy = Policy.Aggressive;
    seed = 7;
  }

let all_peer_faults = ok (Peer_fault.parse_spec "all:0.5")

(* ------------------------------------------------------------------ *)
(* Spec parsing: peer sites, short names, actionable errors            *)

let test_parse_spec () =
  let sp = ok (Peer_fault.parse_spec "all:0.5") in
  check_int "all = six peer sites" 6 (List.length sp);
  List.iter
    (fun (site, r) ->
      check_bool "peer site" true (Fault.is_peer_site site);
      check_bool "rate" true (r = 0.5))
    sp;
  check_bool "short name" true
    (ok (Peer_fault.parse_spec "length-lie:1.0")
    = [ (Fault.Peer_length_lie, 1.0) ]);
  check_bool "full name equivalent" true
    (ok (Peer_fault.parse_spec "peer-length-lie:1.0")
    = ok (Peer_fault.parse_spec "length-lie:1.0"));
  let err s =
    match Peer_fault.parse_spec s with
    | Error m -> m
    | Ok _ -> Alcotest.fail ("expected Error for " ^ s)
  in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  (* Errors must name the offending token and list the valid sites. *)
  let m = err "bogus:0.5" in
  check_bool "names the token" true (contains m "bogus");
  check_bool "lists a valid site" true (contains m "length-lie");
  let m = err "wedge:0.5" in
  check_bool "rejects non-peer site by name" true (contains m "wedge");
  check_bool "points at --faults" true (contains m "peer");
  check_bool "bad rate is an error" true
    (match Peer_fault.parse_spec "flip:7.0" with Error _ -> true | Ok _ -> false)

let test_plan_spec_errors_list_peer_sites () =
  (* The core Plan parser's diagnostics now cover the peer sites too. *)
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  (match Plan.parse_spec "bogus:0.1" with
  | Error m ->
    check_bool "names token" true (contains m "bogus");
    check_bool "lists peer-flip" true (contains m "peer-flip")
  | Ok _ -> Alcotest.fail "unknown site must be an error");
  let all = ok (Plan.parse_spec "all:0.25") in
  check_int "all covers every site" Fault.num_sites (List.length all)

(* ------------------------------------------------------------------ *)
(* Encoder fault transforms: pure, typed, total on peer sites          *)

let mk_fault site seq site_seq =
  { Fault.site; seq; site_seq; vns = 0 }

let sample_msg () =
  (* [LEN][body: name field + payload], outer length at 0 (1 byte). *)
  let wire = Bytes.of_string "\x09NAMEabcde" in
  {
    Peer_fault.m_name = "sample";
    m_bytes = wire;
    m_fields =
      [
        {
          Peer_fault.f_name = "outer";
          f_kind = Peer_fault.Outer_len;
          f_pos = 0;
          f_len = 1;
          f_big_endian = true;
        };
        {
          Peer_fault.f_name = "name";
          f_kind = Peer_fault.Field;
          f_pos = 1;
          f_len = 4;
          f_big_endian = false;
        };
      ];
    m_reframe =
      Some
        (fun body ->
          Bytes.set body 0 (Char.chr (Bytes.length body - 1));
          body);
  }

let test_transforms_deterministic_and_total () =
  let msg = sample_msg () in
  List.iteri
    (fun i site ->
      let f = mk_fault site (i * 3) i in
      let out1, d1 = Peer_fault.apply f msg in
      let out2, d2 = Peer_fault.apply f msg in
      check_bool "pure in (fault, msg)" true (out1 = out2 && d1 = d2);
      check_bool "never empty" true (out1 <> []);
      List.iter
        (fun w -> check_bool "never an empty wire image" true (Bytes.length w > 0))
        out1)
    Fault.peer_sites;
  (* Site-specific shapes. *)
  let apply site = fst (Peer_fault.apply (mk_fault site 5 2) msg) in
  (match apply Fault.Peer_duplicate with
  | [ a; b' ] -> check_bool "duplicate = two copies" true (a = b')
  | _ -> Alcotest.fail "duplicate must emit two wire images");
  (match apply Fault.Peer_flip with
  | [ w ] ->
    check_int "flip keeps length" (Bytes.length msg.Peer_fault.m_bytes)
      (Bytes.length w);
    let diffs = ref 0 in
    Bytes.iteri
      (fun i c -> if c <> Bytes.get msg.Peer_fault.m_bytes i then incr diffs)
      w;
    check_int "flip changes one byte" 1 !diffs
  | _ -> Alcotest.fail "flip must emit one wire image");
  (match apply Fault.Peer_truncate with
  | [ w ] ->
    check_bool "truncate shortens" true
      (Bytes.length w < Bytes.length msg.Peer_fault.m_bytes);
    check_int "truncate reframes the outer length"
      (Bytes.length w - 1)
      (Char.code (Bytes.get w 0))
  | _ -> Alcotest.fail "truncate must emit one wire image");
  (match apply Fault.Peer_drop_field with
  | [ w ] ->
    check_int "drop-field excises the annotated field"
      (Bytes.length msg.Peer_fault.m_bytes - 4)
      (Bytes.length w)
  | _ -> Alcotest.fail "drop-field must emit one wire image");
  (match apply Fault.Peer_desync_frame with
  | [ w ] ->
    check_bool "desync-frame lies in the outer length" true
      (Char.code (Bytes.get w 0) <> Bytes.length w - 1)
  | _ -> Alcotest.fail "desync-frame must emit one wire image");
  (* Non-peer sites are a caller bug. *)
  check_bool "non-peer site raises" true
    (match Peer_fault.apply (mk_fault Fault.Guest_wedge 0 0) msg with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_length_lie_bumps_inner_len () =
  (* With an Inner_len annotation the lie prefers it: the field's value
     grows while the outer framing stays consistent (reframed). *)
  let wire = Bytes.of_string "\x0bHDR\x05stuff--" in
  let msg =
    {
      Peer_fault.m_name = "inner";
      m_bytes = wire;
      m_fields =
        [
          {
            Peer_fault.f_name = "outer";
            f_kind = Peer_fault.Outer_len;
            f_pos = 0;
            f_len = 1;
            f_big_endian = true;
          };
          {
            Peer_fault.f_name = "stuff-len";
            f_kind = Peer_fault.Inner_len;
            f_pos = 4;
            f_len = 1;
            f_big_endian = true;
          };
        ];
      m_reframe =
        Some
          (fun body ->
            Bytes.set body 0 (Char.chr (Bytes.length body - 1));
            body);
    }
  in
  match fst (Peer_fault.apply (mk_fault Fault.Peer_length_lie 9 4) msg) with
  | [ w ] ->
    check_bool "inner length bumped" true
      (Char.code (Bytes.get w 4) > Char.code (Bytes.get wire 4));
    check_int "outer framing reseals" (Bytes.length w - 1)
      (Char.code (Bytes.get w 0))
  | _ -> Alcotest.fail "length-lie must emit one wire image"

(* ------------------------------------------------------------------ *)
(* Scripts and the payload codec                                       *)

let test_scripts_well_formed () =
  let names = Peer_script.supported () in
  check_bool "several scripted targets" true (List.length names >= 3);
  List.iter
    (fun name ->
      check_bool "registry has the target" true
        (Nyx_targets.Registry.find name <> None);
      let s = script name in
      check_bool "has actions" true (Array.length s.Peer_script.p_actions > 0);
      check_bool "quarantine budget positive" true
        (s.Peer_script.p_quarantine_after > 0);
      check_bool "has seed sessions" true (s.Peer_script.p_seed_actions <> []);
      List.iter
        (fun session ->
          List.iter
            (fun a ->
              check_bool "seed action in range" true
                (a >= 0 && a < Array.length s.Peer_script.p_actions))
            session)
        s.Peer_script.p_seed_actions)
    names

let test_payload_codec () =
  let s = script "lightftp" in
  let n = Array.length s.Peer_script.p_actions in
  check_bool "empty payload is a no-op" true
    (Peer_script.decode_payload s Bytes.empty = None);
  (match Peer_script.decode_payload s (Peer_script.payload_of 3) with
  | Some (3, None) -> ()
  | _ -> Alcotest.fail "honest payload must decode to (action, no fault)");
  (match Peer_script.decode_payload s (Peer_script.payload_of ~fault:4 2) with
  | Some (2, Some site) ->
    check_bool "selector 4 = fourth peer site" true
      (site = List.nth Fault.peer_sites 3)
  | _ -> Alcotest.fail "faulted payload must decode the site");
  (* Out-of-range bytes wrap instead of rejecting (mutators are free to
     write anything). *)
  match Peer_script.decode_payload s (Bytes.cat (Bytes.make 1 (Char.chr (n + 1))) (b "\x09")) with
  | Some (a, Some _) -> check_int "action wraps mod palette" 1 a
  | _ -> Alcotest.fail "wrapped payload must still decode"

(* ------------------------------------------------------------------ *)
(* Supervised recovery: desync -> backoff -> restart -> quarantine     *)

let test_backoff_saturation () =
  (* The driver charges delay_ns with attempt = min (streak-1) 30; the
     cap must hold at the clamp boundary without overflow. *)
  let d attempt =
    Backoff.delay_ns ~base_ns:1_000_000 ~cap_ns:64_000_000 ~attempt
  in
  check_int "attempt 0" 1_000_000 (d 0);
  check_int "attempt 5" 32_000_000 (d 5);
  check_int "attempt 6 saturates" 64_000_000 (d 6);
  check_int "attempt 30 stays capped" 64_000_000 (d 30);
  check_bool "monotone up to the cap" true
    (List.for_all (fun i -> d i <= d (i + 1)) (List.init 30 Fun.id))

let desync_seed () =
  (* PASS before USER forever: every expectation (230) fails, so the
     session desyncs, backs off, restarts and finally quarantines. *)
  let s = script "lightftp" in
  let pass =
    Option.get
      (Array.find_index
         (fun a -> a.Peer_script.a_name = "pass")
         s.Peer_script.p_actions)
  in
  let spec = Campaign.net_spec () in
  [
    Nyx_spec.Net_spec.seed_of_packets spec
      (List.init 6 (fun _ -> Peer_script.payload_of pass));
  ]

let test_desync_quarantine_partial_results () =
  let cfg = { peer_config with Campaign.max_execs = 40 } in
  let r =
    Campaign.run ~peer:(script "lightftp") ~seeds:(desync_seed ()) cfg
      (entry "lightftp")
  in
  let p = Option.get r.Report.peer in
  check_bool "campaign completed with partial results" true (r.Report.execs > 0);
  check_bool "desyncs counted" true (p.Report.peer_desyncs >= 3);
  check_bool "restarts counted" true (p.Report.peer_restarts >= 2);
  check_bool "session quarantined" true (p.Report.peer_quarantines >= 1);
  check_bool "backoff charged to virtual time" true (p.Report.peer_backoff_ns > 0);
  check_bool "no faults were armed" true (r.Report.resilience = None)

let test_fleet_quarantine_then_partial_results () =
  (* A fleet where one peer instance always dies: the supervisor must
     quarantine exactly that instance and return the peer survivors'
     partial results. *)
  let cfg = { peer_config with Campaign.max_execs = 120 } in
  let e = entry "lightftp" in
  let s = script "lightftp" in
  let fleet =
    Fleet.run ~instances:3 ~domains:1 ~max_restarts:1
      ~run_instance:(fun c ->
        if c.Campaign.seed = cfg.Campaign.seed + 1000 then
          failwith "test: injected peer instance failure"
        else Campaign.run ~peer:s ~peer_faults:all_peer_faults c e)
      ~config:cfg e
  in
  check_int "one quarantined" 1 fleet.Fleet.quarantined;
  check_int "two survivors" 2 (List.length fleet.Fleet.results);
  check_int "retry budget honoured" 1 fleet.Fleet.restarts;
  List.iter
    (fun r ->
      check_bool "survivors carry peer stats" true (r.Report.peer <> None))
    fleet.Fleet.results

(* ------------------------------------------------------------------ *)
(* Determinism contracts                                               *)

let test_fault_free_golden () =
  (* A peer campaign with every encoder rate at zero arms no plan and is
     byte-identical to one that never mentioned faults at all. *)
  let e = entry "lightftp" in
  let s = script "lightftp" in
  let plain = Campaign.run ~peer:s peer_config e in
  let zeroed =
    Campaign.run ~peer:s
      ~peer_faults:(List.map (fun site -> (site, 0.0)) Fault.peer_sites)
      peer_config e
  in
  check_bool "no resilience block without live rates" true
    (plain.Report.resilience = None && zeroed.Report.resilience = None);
  check_bool "zero-rate peer faults change nothing" true
    (Report.same_deterministic plain zeroed);
  check_bool "peer stats present" true (plain.Report.peer <> None)

let test_peer_campaign_deterministic () =
  let e = entry "tinydtls" in
  let s = script "tinydtls" in
  let r1 = Campaign.run ~peer:s ~peer_faults:all_peer_faults peer_config e in
  let r2 = Campaign.run ~peer:s ~peer_faults:all_peer_faults peer_config e in
  check_bool "same-seed peer campaigns agree" true
    (Report.same_deterministic r1 r2);
  let res = Option.get r1.Report.resilience in
  check_bool "encoder faults fired" true (res.Report.faults_injected > 0);
  check_int "all recovered" 0 res.Report.faults_aborted;
  let p = Option.get r1.Report.peer in
  check_bool "fired counters track the plan" true
    (List.fold_left (fun a (_, n) -> a + n) 0 p.Report.peer_fired
    = res.Report.faults_injected)

let test_fleet_domains_identity () =
  (* NYX_DOMAINS must never leak into peer results: a synced peer fleet
     at 1 worker and at 4 workers is bit-identical. *)
  let cfg = { peer_config with Campaign.max_execs = 250 } in
  let e = entry "lightftp" in
  let s = script "lightftp" in
  let run domains =
    Fleet.run ~instances:3 ~domains ~peer:s ~peer_faults:all_peer_faults
      ~sync_ns:300_000_000 ~config:cfg e
  in
  let f1 = run 1 and f4 = run 4 in
  check_int "same survivor count" (List.length f1.Fleet.results)
    (List.length f4.Fleet.results);
  List.iter2
    (fun a b' ->
      check_bool "per-instance results identical" true
        (Report.same_deterministic a b'))
    f1.Fleet.results f4.Fleet.results;
  check_bool "same union coverage" true
    (f1.Fleet.union_edges = f4.Fleet.union_edges);
  check_bool "same epoch rows" true (f1.Fleet.sync_epochs = f4.Fleet.sync_epochs)

(* Kill at any checkpoint + resume == the uninterrupted run, with and
   without peer encoder faults armed. Resume infers peer mode from the
   checkpoint's c_peer block — no peer argument is passed. *)

exception Killed

let peer_ck_config = { peer_config with Campaign.max_execs = 600 }

let run_peer_with_kill ~peer_faults ~kill_at path =
  let ck =
    Campaign.checkpointing ~path ~interval_ns:100_000_000
      ~on_write:(fun ordinal -> if ordinal = kill_at then raise Killed)
      ()
  in
  match
    Campaign.run ~peer:(script "lightftp") ?peer_faults ~checkpoint:ck
      peer_ck_config (entry "lightftp")
  with
  | r -> Some r
  | exception Killed -> None

(* domain-safe: test-only lazy baseline, forced on a single domain *)
let prop_peer_kill_resume_bit_identical =
  let baseline peer_faults =
    Campaign.run ~peer:(script "lightftp") ?peer_faults peer_ck_config
      (entry "lightftp")
  in
  let base_plain = lazy (baseline None) in
  let base_faulted = lazy (baseline (Some all_peer_faults)) in
  QCheck.Test.make
    ~name:"peer kill at any checkpoint + resume == straight run" ~count:6
    QCheck.(pair (int_range 1 8) bool)
    (fun (kill_at, with_faults) ->
      let peer_faults = if with_faults then Some all_peer_faults else None in
      let expected =
        Lazy.force (if with_faults then base_faulted else base_plain)
      in
      let path = Filename.temp_file "nyx_peer_ckpt" ".bin" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
        (fun () ->
          match run_peer_with_kill ~peer_faults ~kill_at path with
          | Some finished -> Report.same_deterministic finished expected
          | None ->
            let ckpt = ok (Checkpoint.load path) in
            check_bool "checkpoint carries peer counters" true
              (ckpt.Checkpoint.c_peer <> None);
            let resumed = Campaign.resume ckpt (entry "lightftp") in
            Report.same_deterministic resumed expected))

(* ------------------------------------------------------------------ *)
(* Atomic_io regression: orphan sweep + fsync'd temp                   *)

let test_atomic_io_orphan_sweep () =
  let path = Filename.temp_file "nyx_orphan" ".bin" in
  let tmp = path ^ ".tmp" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; tmp ])
    (fun () ->
      (match Atomic_io.write_file path (b "v1") with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      (* Simulate a writer killed between write and rename: the orphaned
         temp must not shadow the committed file, and the next write
         sweeps it. *)
      let oc = open_out_bin tmp in
      output_string oc "half-written garbage";
      close_out oc;
      (match Atomic_io.read_file path with
      | Ok d ->
        Alcotest.(check string) "orphan never shadows the committed file"
          "v1" (Bytes.to_string d)
      | Error m -> Alcotest.fail m);
      (match Atomic_io.write_file path (b "v2") with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      check_bool "orphan swept by the next write" true
        (not (Sys.file_exists tmp));
      match Atomic_io.read_file path with
      | Ok d -> Alcotest.(check string) "new value committed" "v2" (Bytes.to_string d)
      | Error m -> Alcotest.fail m)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "nyx_peer"
    [
      ( "fault-spec",
        [
          Alcotest.test_case "peer spec parsing" `Quick test_parse_spec;
          Alcotest.test_case "plan errors list peer sites" `Quick
            test_plan_spec_errors_list_peer_sites;
        ] );
      ( "transforms",
        [
          Alcotest.test_case "deterministic and total" `Quick
            test_transforms_deterministic_and_total;
          Alcotest.test_case "length-lie bumps inner length" `Quick
            test_length_lie_bumps_inner_len;
        ] );
      ( "scripts",
        [
          Alcotest.test_case "scripts well-formed" `Quick
            test_scripts_well_formed;
          Alcotest.test_case "payload codec" `Quick test_payload_codec;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "backoff cap saturation" `Quick
            test_backoff_saturation;
          Alcotest.test_case "desync -> quarantine -> partial results" `Quick
            test_desync_quarantine_partial_results;
          Alcotest.test_case "fleet quarantine, peer survivors report" `Slow
            test_fleet_quarantine_then_partial_results;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fault-free golden identity" `Slow
            test_fault_free_golden;
          Alcotest.test_case "same-seed peer campaigns agree" `Slow
            test_peer_campaign_deterministic;
          Alcotest.test_case "fleet identical across domains" `Slow
            test_fleet_domains_identity;
          QCheck_alcotest.to_alcotest prop_peer_kill_resume_bit_identical;
        ] );
      ( "atomic-io",
        [
          Alcotest.test_case "orphan sweep + commit" `Quick
            test_atomic_io_orphan_sweep;
        ] );
    ]
