(* nyx_resilience: deterministic fault injection, supervised fleets and
   crash-safe checkpoint/resume (the ISSUE's contract tests). *)

open Nyx_resilience
open Nyx_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let b = Bytes.of_string

let ok = function
  | Ok v -> v
  | Error m -> Alcotest.fail ("expected Ok, got Error: " ^ m)

let echo_entry () = Option.get (Nyx_targets.Registry.find "echo")

let small_config =
  {
    Campaign.default_config with
    Campaign.budget_ns = 2_000_000_000;
    max_execs = 2_000;
    policy = Policy.Aggressive;
    seed = 7;
  }

(* ------------------------------------------------------------------ *)
(* Fault sites and spec parsing                                        *)

let test_site_names_roundtrip () =
  check_int "eleven sites" 11 Fault.num_sites;
  check_int "six peer sites" 6 (List.length Fault.peer_sites);
  List.iter
    (fun s -> check_bool "peer site classified" true (Fault.is_peer_site s))
    Fault.peer_sites;
  List.iteri
    (fun i site ->
      check_int "dense index" i (Fault.site_index site);
      match Fault.site_of_name (Fault.site_name site) with
      | Some s -> check_bool "name roundtrip" true (s = site)
      | None -> Alcotest.fail "site name did not round-trip")
    Fault.all_sites;
  check_bool "unknown name" true (Fault.site_of_name "bogus" = None)

let test_spec_parsing () =
  let sp = ok (Plan.parse_spec "snap-corrupt:0.5,wedge:0.125") in
  check_int "two items" 2 (List.length sp);
  check_bool "snap rate" true (List.assoc Fault.Snap_corrupt sp = 0.5);
  check_bool "wedge rate" true (List.assoc Fault.Guest_wedge sp = 0.125);
  let all = ok (Plan.parse_spec "all:0.25") in
  check_int "all expands" Fault.num_sites (List.length all);
  List.iter (fun (_, r) -> check_bool "all rate" true (r = 0.25)) all;
  let is_error s =
    match Plan.parse_spec s with Error _ -> true | Ok _ -> false
  in
  check_bool "unknown site" true (is_error "bogus:0.1");
  check_bool "rate > 1" true (is_error "wedge:1.5");
  check_bool "rate not a float" true (is_error "wedge:x");
  check_bool "missing colon" true (is_error "wedge");
  check_bool "empty spec" true (is_error "")

let test_spec_canonical_roundtrip () =
  let sp = ok (Plan.parse_spec "restore-fail:0.05,dirty-loss:0.01") in
  let s = Plan.spec_to_string sp in
  check_bool "roundtrip" true (ok (Plan.parse_spec s) = sp)

let test_of_env () =
  Unix.putenv "NYX_FAULTS" "wedge:0.5";
  (match Plan.of_env () with
  | Some [ (Fault.Guest_wedge, r) ] -> check_bool "env rate" true (r = 0.5)
  | _ -> Alcotest.fail "NYX_FAULTS not parsed");
  Unix.putenv "NYX_FAULTS" "nonsense";
  (try
     ignore (Plan.of_env ());
     Alcotest.fail "malformed NYX_FAULTS must raise"
   with Invalid_argument _ -> ());
  Unix.putenv "NYX_FAULTS" "";
  check_bool "unset" true (Plan.of_env () = None)

(* ------------------------------------------------------------------ *)
(* Plan determinism                                                    *)

let fire_sequence plan n =
  List.init n (fun i ->
      List.map
        (fun site ->
          match Plan.fire plan site ~vns:(i * 10) with
          | Some f -> Some (f.Fault.site, f.Fault.seq, f.Fault.site_seq, f.Fault.vns)
          | None -> None)
        Fault.all_sites)

let test_plan_deterministic () =
  let sp = ok (Plan.parse_spec "all:0.3") in
  let p1 = Plan.create sp (Nyx_sim.Rng.create 42) in
  let p2 = Plan.create sp (Nyx_sim.Rng.create 42) in
  check_bool "identical schedules" true (fire_sequence p1 200 = fire_sequence p2 200);
  let t = Plan.totals p1 in
  check_bool "some fired" true (t.Plan.injected > 0);
  check_bool "totals match" true (Plan.totals p1 = Plan.totals p2)

let test_zero_rate_draws_nothing () =
  (* A spec naming only some sites must produce the same schedule for
     those sites whatever consultations the zero-rate sites see. *)
  let sp = ok (Plan.parse_spec "wedge:0.5") in
  let p1 = Plan.create sp (Nyx_sim.Rng.create 9) in
  let p2 = Plan.create sp (Nyx_sim.Rng.create 9) in
  let seq1 =
    List.init 100 (fun i -> Plan.fire p1 Fault.Guest_wedge ~vns:i <> None)
  in
  let seq2 =
    List.init 100 (fun i ->
        (* interleave zero-rate consultations *)
        ignore (Plan.fire p2 Fault.Snap_corrupt ~vns:i);
        ignore (Plan.fire p2 Fault.Trace_sink ~vns:i);
        Plan.fire p2 Fault.Guest_wedge ~vns:i <> None)
  in
  check_bool "zero-rate sites draw nothing" true (seq1 = seq2)

let test_suppressed_no_draw () =
  let sp = ok (Plan.parse_spec "wedge:1.0") in
  let p = Plan.create sp (Nyx_sim.Rng.create 1) in
  Plan.suppressed p (fun () ->
      check_bool "no fire while suppressed" true
        (Plan.fire p Fault.Guest_wedge ~vns:0 = None));
  (* The suppressed consultation drew nothing: the next fire is the
     plan's first, seq 0. *)
  match Plan.fire p Fault.Guest_wedge ~vns:5 with
  | Some f ->
    check_int "seq unaffected" 0 f.Fault.seq;
    check_int "recovered count" 0 (Plan.totals p).Plan.recovered;
    Plan.record_recovered p f;
    check_int "recovered counted" 1 (Plan.totals p).Plan.recovered
  | None -> Alcotest.fail "rate-1.0 site must fire"

let test_plan_state_roundtrip () =
  let sp = ok (Plan.parse_spec "all:0.4") in
  let p1 = Plan.create sp (Nyx_sim.Rng.create 3) in
  ignore (fire_sequence p1 50);
  let st = Plan.state p1 in
  let p2 = Plan.create sp (Nyx_sim.Rng.create 0) in
  Plan.restore_state p2 st;
  check_bool "continuation identical" true
    (fire_sequence p1 50 = fire_sequence p2 50);
  check_bool "totals equal" true (Plan.totals p1 = Plan.totals p2)

(* ------------------------------------------------------------------ *)
(* Backoff                                                             *)

let test_backoff () =
  let d attempt = Backoff.delay_ns ~base_ns:1_000 ~cap_ns:60_000 ~attempt in
  check_int "attempt 0" 1_000 (d 0);
  check_int "attempt 1" 2_000 (d 1);
  check_int "attempt 5" 32_000 (d 5);
  check_int "attempt 6 capped" 60_000 (d 6);
  check_int "huge attempt stays capped" 60_000 (d 200);
  check_int "total of 3" 7_000
    (Backoff.total_ns ~base_ns:1_000 ~cap_ns:60_000 ~attempts:3);
  let raises f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  check_bool "bad base" true
    (raises (fun () -> Backoff.delay_ns ~base_ns:0 ~cap_ns:10 ~attempt:0));
  check_bool "cap below base" true
    (raises (fun () -> Backoff.delay_ns ~base_ns:10 ~cap_ns:5 ~attempt:0));
  check_bool "negative attempt" true
    (raises (fun () -> Backoff.delay_ns ~base_ns:10 ~cap_ns:20 ~attempt:(-1)))

(* ------------------------------------------------------------------ *)
(* Atomic_io                                                           *)

let test_atomic_io () =
  let path = Filename.temp_file "nyx_atomic" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (match Atomic_io.write_file path (b "first") with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      (match Atomic_io.write_file path (b "second version") with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      (match Atomic_io.read_file path with
      | Ok data -> Alcotest.(check string) "latest wins" "second version"
          (Bytes.to_string data)
      | Error m -> Alcotest.fail m);
      check_bool "no tmp litter" true
        (Array.for_all
           (fun f -> not (String.length f > 4 && Filename.check_suffix f ".tmp"))
           (Sys.readdir (Filename.dirname path))));
  check_bool "missing file is Error" true
    (match Atomic_io.read_file "/nonexistent/nyx" with
    | Error _ -> true
    | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Engine: latent faults and invalidation ordering                     *)

let mk_faulted_engine spec_str =
  let clock = Nyx_sim.Clock.create () in
  let vm =
    Nyx_vm.Vm.create
      ~config:{ Nyx_vm.Vm.mem_pages = 128; device_size = 64; disk_sectors = 8 }
      clock
  in
  Nyx_vm.Memory.write vm.Nyx_vm.Vm.mem 0 (b "root-image");
  let eng = Nyx_snapshot.Engine.create vm (Nyx_snapshot.Aux_state.create ()) in
  let plan = Plan.create (ok (Plan.parse_spec spec_str)) (Nyx_sim.Rng.create 11) in
  Nyx_vm.Vm.arm_faults vm plan;
  (eng, vm, plan)

let mem_head vm = Bytes.to_string (Nyx_vm.Memory.read vm.Nyx_vm.Vm.mem 0 10)

let test_restore_fail_ordering () =
  let eng, vm, plan = mk_faulted_engine "restore-fail:1.0" in
  Nyx_snapshot.Engine.take_incremental eng;
  check_bool "no latent fault at take" true (Nyx_snapshot.Engine.pending eng = []);
  Nyx_vm.Memory.write vm.Nyx_vm.Vm.mem 0 (b "suffix-dmg");
  (* Detection precedes any engine mutation: after the raise the engine is
     still active with the fault pending, and guest memory untouched. *)
  (match Nyx_snapshot.Engine.restore eng with
  | () -> Alcotest.fail "restore must raise under restore-fail:1.0"
  | exception Fault.Injected f ->
    check_bool "site" true (f.Fault.site = Fault.Restore_fail));
  check_bool "still active" true (Nyx_snapshot.Engine.has_incremental eng);
  check_int "fault pending" 1 (List.length (Nyx_snapshot.Engine.pending eng));
  Alcotest.(check string) "memory untouched by failed restore" "suffix-dmg"
    (mem_head vm);
  (* restore_root is the recovery: discards the incremental, retires the
     pending fault as recovered, and leaves a consistent root-mode engine. *)
  Nyx_snapshot.Engine.restore_root eng;
  check_bool "pending retired" true (Nyx_snapshot.Engine.pending eng = []);
  check_bool "back to root mode" true (not (Nyx_snapshot.Engine.has_incremental eng));
  Alcotest.(check string) "memory back at root" "root-image" (mem_head vm);
  let t = Plan.totals plan in
  check_int "injected" 1 t.Plan.injected;
  check_int "recovered" 1 t.Plan.recovered;
  (* The engine must be reusable after recovery. *)
  Nyx_snapshot.Engine.take_incremental eng;
  check_bool "fresh incremental also faulted on restore" true
    (match Nyx_snapshot.Engine.restore eng with
    | exception Fault.Injected _ -> true
    | () -> false);
  Nyx_snapshot.Engine.restore_root eng

let test_snap_corrupt_latent () =
  let eng, vm, plan = mk_faulted_engine "snap-corrupt:1.0" in
  Nyx_snapshot.Engine.take_incremental eng;
  (* Corruption at creation is latent: recorded on the snapshot, detected
     at the next restore. *)
  check_bool "latent fault recorded" true
    (match Nyx_snapshot.Engine.pending eng with
    | [ f ] -> f.Fault.site = Fault.Snap_corrupt
    | _ -> false);
  Nyx_vm.Memory.write vm.Nyx_vm.Vm.mem 0 (b "scribbled!");
  (match Nyx_snapshot.Engine.restore eng with
  | () -> Alcotest.fail "restoring a corrupt incremental must raise"
  | exception Fault.Injected f ->
    check_bool "latent site detected" true (f.Fault.site = Fault.Snap_corrupt));
  Nyx_snapshot.Engine.restore_root eng;
  Alcotest.(check string) "recreate-on-demand restores root" "root-image"
    (mem_head vm);
  check_bool "recovered == injected" true
    (let t = Plan.totals plan in
     t.Plan.injected = t.Plan.recovered && t.Plan.injected >= 1)

let test_dirty_loss_latent () =
  let eng, _vm, plan = mk_faulted_engine "dirty-loss:1.0" in
  Nyx_snapshot.Engine.take_incremental eng;
  check_bool "dirty loss recorded at take" true
    (List.exists
       (fun f -> f.Fault.site = Fault.Dirty_loss)
       (Nyx_snapshot.Engine.pending eng));
  (match Nyx_snapshot.Engine.restore eng with
  | () -> Alcotest.fail "incomplete incremental must fail its restore"
  | exception Fault.Injected _ -> ());
  Nyx_snapshot.Engine.restore_root eng;
  check_bool "retired" true
    (let t = Plan.totals plan in
     t.Plan.injected = t.Plan.recovered)

(* ------------------------------------------------------------------ *)
(* Aux_state.restore rejection paths                                   *)

let handler name cell =
  {
    Nyx_snapshot.Aux_state.name;
    save = (fun () -> b (string_of_int !cell));
    load = (fun bts -> cell := int_of_string (Bytes.to_string bts));
  }

let test_aux_restore_rejections () =
  let clock = Nyx_sim.Clock.create () in
  let cell = ref 5 in
  let reg = Nyx_snapshot.Aux_state.create () in
  Nyx_snapshot.Aux_state.register reg (handler "a" cell);
  let cap = Nyx_snapshot.Aux_state.capture reg clock in
  let expect_reject reg' =
    Alcotest.check_raises "handler set changed"
      (Invalid_argument "Aux_state.restore: handler set changed since capture")
      (fun () -> Nyx_snapshot.Aux_state.restore reg' clock cap)
  in
  (* Length mismatch: a handler registered after the capture. *)
  let grown = Nyx_snapshot.Aux_state.create () in
  Nyx_snapshot.Aux_state.register grown (handler "a" cell);
  Nyx_snapshot.Aux_state.register grown (handler "late" (ref 0));
  expect_reject grown;
  (* Name mismatch at equal length. *)
  let renamed = Nyx_snapshot.Aux_state.create () in
  Nyx_snapshot.Aux_state.register renamed (handler "b" cell);
  expect_reject renamed;
  (* And the matching set still restores. *)
  cell := 99;
  Nyx_snapshot.Aux_state.restore reg clock cap;
  check_int "restored" 5 !cell

(* ------------------------------------------------------------------ *)
(* Trace sink hardening                                                *)

let test_trace_sink_failure_disables () =
  let path = Filename.temp_file "nyx_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Nyx_obs.Trace.with_file_sink path (fun () ->
          check_bool "sink armed" true (Nyx_obs.Trace.on ());
          Nyx_obs.Trace.instant ~vns:1 "before" [];
          Nyx_obs.Trace.flush ();
          Nyx_obs.Trace.inject_flush_failure ();
          Nyx_obs.Trace.instant ~vns:2 "lost" [];
          (* The failing flush must not raise... *)
          Nyx_obs.Trace.flush ();
          (* ...and the sink disables itself: event sites see tracing off. *)
          check_bool "tracing disabled after sink failure" true
            (not (Nyx_obs.Trace.on ()));
          (* Subsequent flushes are no-ops, not repeated warnings. *)
          Nyx_obs.Trace.flush ());
      (* Events written before the failure survive on disk. *)
      let ic = open_in path in
      let first = input_line ic in
      close_in ic;
      check_bool "pre-failure event persisted" true
        (String.length first > 0
        && String.index_opt first '{' = Some 0))

let test_trace_sink_normal_writes () =
  let path = Filename.temp_file "nyx_trace_ok" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Nyx_obs.Trace.with_file_sink path (fun () ->
          Nyx_obs.Trace.instant ~vns:7 "healthy" [ ("k", Nyx_obs.Trace.Int 1) ];
          Nyx_obs.Trace.flush ());
      let ic = open_in path in
      let line = input_line ic in
      close_in ic;
      check_bool "event written" true
        (let re_has s sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
           in
           go 0
         in
         re_has line "healthy"))

(* ------------------------------------------------------------------ *)
(* Pool error path: drain-and-cancel                                   *)

exception Boom of int

let test_pool_cancels_after_failure () =
  let ran = Array.make 12 false in
  let tasks = Array.init 12 (fun i -> i) in
  (match
     Nyx_parallel.Pool.map ~domains:1
       (fun i ->
         ran.(i) <- true;
         if i = 5 then raise (Boom i);
         i)
       tasks
   with
  | _ -> Alcotest.fail "expected Task_error"
  | exception Nyx_parallel.Pool.Task_error { index; exn } ->
    check_int "failing index" 5 index;
    check_bool "original exception" true (exn = Boom 5));
  (* Sequentially, nothing after the failure runs: the queue is drained. *)
  for i = 0 to 4 do
    check_bool "ran before failure" true ran.(i)
  done;
  for i = 6 to 11 do
    check_bool "cancelled after failure" false ran.(i)
  done

let test_pool_cancelled_never_escapes () =
  (* Parallel: whatever interleaving happens, the reported failure is a
     real one (never the Cancelled placeholder) and at the lowest index. *)
  for _rep = 1 to 5 do
    match
      Nyx_parallel.Pool.map ~domains:4
        (fun i -> if i >= 3 then raise (Boom i) else i)
        (Array.init 16 (fun i -> i))
    with
    | _ -> Alcotest.fail "expected Task_error"
    | exception Nyx_parallel.Pool.Task_error { index; exn } ->
      check_int "lowest real failure" 3 index;
      check_bool "payload is the real exception" true (exn = Boom 3)
  done

(* ------------------------------------------------------------------ *)
(* Hang budget (NYX_HANG_BUDGET)                                       *)

let test_hang_budget_default () =
  Nyx_targets.Target.set_hang_budget_override None;
  (* The suite does not set NYX_HANG_BUDGET; the default applies. *)
  check_int "default" 4096 (Nyx_targets.Target.hang_budget ())

let test_hang_report_carries_budget () =
  Nyx_targets.Target.set_hang_budget_override (Some 1);
  Fun.protect
    ~finally:(fun () -> Nyx_targets.Target.set_hang_budget_override None)
    (fun () ->
      check_int "override wins" 1 (Nyx_targets.Target.hang_budget ());
      let entry = echo_entry () in
      let clock = Nyx_sim.Clock.create () in
      let vm = Nyx_vm.Vm.create clock in
      let net = Nyx_netemu.Net.create clock in
      let ctx = Nyx_targets.Ctx.of_vm ~layout_cookie:1 ~net vm in
      let rt = Nyx_targets.Target.boot entry.Nyx_targets.Registry.target ctx in
      match
        (* An accept plus its banner exceeds a one-iteration budget. *)
        ignore
          (Nyx_netemu.Net.connect_peer net
             ~port:entry.Nyx_targets.Registry.target.Nyx_targets.Target.info
                     .Nyx_targets.Target.port);
        Nyx_targets.Target.pump rt
      with
      | () -> Alcotest.fail "expected a hang with budget 1"
      | exception Nyx_targets.Ctx.Crash { kind; detail } ->
        Alcotest.(check string) "kind" "hang" kind;
        let contains s sub =
          let n = String.length sub in
          let rec go i =
            i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
          in
          go 0
        in
        check_bool "detail names the budget used" true
          (contains detail "within 1 iterations (hang budget)"))

(* ------------------------------------------------------------------ *)
(* Faulted campaigns                                                   *)

let faults_spec = ok (Plan.parse_spec "all:0.02")

let test_campaign_no_faults_no_block () =
  let r = Campaign.run small_config (echo_entry ()) in
  check_bool "resilience absent when faults off" true (r.Report.resilience = None)

let test_campaign_faults_recovered_and_deterministic () =
  let entry = echo_entry () in
  let r1 = Campaign.run ~faults:faults_spec small_config entry in
  let r2 = Campaign.run ~faults:faults_spec small_config entry in
  (match r1.Report.resilience with
  | None -> Alcotest.fail "faulted campaign must report resilience"
  | Some res ->
    check_bool "faults actually fired" true (res.Report.faults_injected > 0);
    check_int "all recovered" res.Report.faults_injected
      res.Report.faults_recovered;
    check_int "none aborted" 0 res.Report.faults_aborted);
  check_bool "same-seed faulted runs identical" true
    (Report.same_deterministic r1 r2)

(* ------------------------------------------------------------------ *)
(* Fleet supervisor                                                    *)

let tiny_config =
  {
    Campaign.default_config with
    Campaign.budget_ns = 300_000_000;
    max_execs = 120;
    policy = Policy.Balanced;
    seed = 3;
  }

let test_fleet_quarantines_deterministic_failure () =
  let entry = echo_entry () in
  let calls = ref 0 in
  let fleet =
    Fleet.run ~instances:3 ~domains:1 ~max_restarts:2
      ~run_instance:(fun cfg ->
        incr calls;
        if cfg.Campaign.seed = tiny_config.Campaign.seed + 1000 then
          failwith "always dies"
        else Campaign.run cfg entry)
      ~config:tiny_config entry
  in
  check_int "instances" 3 fleet.Fleet.instances;
  check_int "quarantined" 1 fleet.Fleet.quarantined;
  check_int "survivors" 2 (List.length fleet.Fleet.results);
  check_int "retry budget honoured" 2 fleet.Fleet.restarts;
  (* 2 healthy + 3 attempts (initial + 2 restarts) for the bad one. *)
  check_int "attempt count" 5 !calls;
  check_bool "healthy instances carry no restart block" true
    (List.for_all (fun r -> r.Report.resilience = None) fleet.Fleet.results)

let test_fleet_restart_recovers_transient_failure () =
  let entry = echo_entry () in
  let attempts = Hashtbl.create 4 in
  let fleet =
    Fleet.run ~instances:3 ~domains:1 ~max_restarts:3
      ~run_instance:(fun cfg ->
        let seed = cfg.Campaign.seed in
        let n = Option.value ~default:0 (Hashtbl.find_opt attempts seed) in
        Hashtbl.replace attempts seed (n + 1);
        if seed = tiny_config.Campaign.seed + 2000 && n = 0 then
          failwith "transient"
        else Campaign.run cfg entry)
      ~config:tiny_config entry
  in
  check_int "no quarantine" 0 fleet.Fleet.quarantined;
  check_int "all survived" 3 (List.length fleet.Fleet.results);
  check_int "one restart" 1 fleet.Fleet.restarts;
  let restarted = List.nth fleet.Fleet.results 2 in
  match restarted.Report.resilience with
  | Some res ->
    check_int "its restarts" 1 res.Report.restarts;
    check_int "backoff charged" 1_000_000_000 res.Report.backoff_ns;
    check_bool "not quarantined" true (not res.Report.quarantined)
  | None -> Alcotest.fail "restarted survivor must carry a resilience block"

let test_fleet_all_quarantined_partial_outcome () =
  let entry = echo_entry () in
  let fleet =
    Fleet.run ~instances:2 ~domains:1 ~max_restarts:1
      ~run_instance:(fun _ -> failwith "everything is broken")
      ~config:tiny_config entry
  in
  check_int "all quarantined" 2 fleet.Fleet.quarantined;
  check_bool "no survivors" true (fleet.Fleet.results = []);
  check_int "no solves" 0 fleet.Fleet.solves;
  check_bool "no first solve" true (fleet.Fleet.first_solve_ns = None)

(* ------------------------------------------------------------------ *)
(* Checkpoint codec                                                    *)

let sample_checkpoint () =
  let entry = echo_entry () in
  let spec = Campaign.net_spec () in
  let program = List.hd (Campaign.make_seeds entry spec) in
  {
    Checkpoint.c_policy = "nyx-net-aggressive";
    c_budget_ns = 123;
    c_max_execs = 456;
    c_seed = 7;
    c_asan = true;
    c_stop_on_solve = false;
    c_trim = true;
    c_sample_interval_ns = 1000;
    c_target = "echo";
    c_clock_ns = 99;
    c_execs = 12;
    c_last_sample = 98;
    c_solved_ns = Some 55;
    c_sched_rng = 0x1234_5678_9abc_def0L;
    c_mut_rng = -1L;
    c_policy_state =
      { Policy.st_rng = 17L; st_cursor = [ (1, 2); (3, 4) ]; st_dyn = []; st_probes = 0;
        st_probe_hashes = 0; st_probe_skipped = 0 };
    c_corpus =
      [
        {
          Checkpoint.ce_program = Nyx_spec.Program.serialize program;
          ce_exec_ns = 10;
          ce_discovered_ns = 20;
          ce_state_code = 3;
        };
      ];
    c_virgin = Bytes.make 64 '\xff';
    c_timeline = [ (0, Int64.bits_of_float 1.0); (5, Int64.bits_of_float 2.5) ];
    c_crashes =
      [
        {
          Checkpoint.cr_kind = "assertion";
          cr_detail = "detail text";
          cr_found_ns = 44;
          cr_found_exec = 9;
          cr_input = b "\x00\x01input";
        };
      ];
    c_engine =
      {
        Nyx_snapshot.Engine.p_mirror = [ 1; 5; 9 ];
        p_creates_since_remirror = 2;
        p_stats =
          {
            Nyx_snapshot.Engine.root_restores = 1;
            incremental_creates = 2;
            incremental_restores = 3;
            pages_restored = 4;
            remirrors = 5;
          };
        p_dirty = [ 9; 5 ];
      };
    c_dict = [ b "GET"; Bytes.empty; b "\r\n" ];
    c_max_ops = 24;
    c_exec_timeline = [ (3, Int64.bits_of_float 1.0); (8, Int64.bits_of_float 2.5) ];
    c_mut_engine = "typed";
    c_mut_weights = [ ("splice", Int64.bits_of_float 2.0) ];
    c_mut_state =
      [
        {
          Nyx_spec.Mutation_engine.ms_name = "havoc";
          ms_attempts = 10;
          ms_rejected = 0;
          ms_accepts = 3;
          ms_credit = Int64.bits_of_float 0.25;
        };
        {
          Nyx_spec.Mutation_engine.ms_name = "splice";
          ms_attempts = 4;
          ms_rejected = 2;
          ms_accepts = 1;
          ms_credit = Int64.bits_of_float 0.05;
        };
      ];
    c_faults =
      Some
        ( "wedge:0.5",
          {
            Plan.st_rng = 21L;
            st_seq = 4;
            st_injected = Array.make Fault.num_sites 1;
            st_recovered = Array.make Fault.num_sites 1;
          } );
    c_profile = None;
    c_peer =
      Some
        {
          Nyx_peer.Peer_driver.pd_actions = 42;
          pd_fired = Array.of_list (List.map (fun _ -> 2) Fault.peer_sites);
          pd_desyncs = 3;
          pd_restarts = 2;
          pd_quarantines = 1;
          pd_backoff_ns = 7_000_000;
        };
  }

let test_checkpoint_roundtrip () =
  let t = sample_checkpoint () in
  check_bool "encode/decode identity" true (Checkpoint.decode (Checkpoint.encode t) = t);
  let path = Filename.temp_file "nyx_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (match Checkpoint.save path t with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      match Checkpoint.load path with
      | Ok t' -> check_bool "file roundtrip" true (t' = t)
      | Error m -> Alcotest.fail m)

let test_checkpoint_rejects_corrupt () =
  let t = sample_checkpoint () in
  let enc = Checkpoint.encode t in
  let corrupt data =
    match Checkpoint.decode data with
    | exception Checkpoint.Corrupt _ -> true
    | _ -> false
  in
  check_bool "truncated" true (corrupt (Bytes.sub enc 0 (Bytes.length enc / 2)));
  check_bool "trailing garbage" true (corrupt (Bytes.cat enc (b "x")));
  check_bool "bad magic" true
    (corrupt
       (let d = Bytes.copy enc in
        Bytes.set d 0 'X';
        d));
  check_bool "empty" true (corrupt Bytes.empty)

(* ------------------------------------------------------------------ *)
(* Checkpoint/resume determinism                                       *)

exception Killed

let ck_config =
  {
    Campaign.default_config with
    Campaign.budget_ns = 2_000_000_000;
    max_execs = 2_000;
    policy = Policy.Aggressive;
    seed = 7;
  }

let run_with_kill ~faults ~kill_at path =
  (* Returns [None] when the campaign was killed at checkpoint [kill_at]
     (the file holds that checkpoint), [Some result] when it finished
     before writing that many checkpoints. *)
  let ck =
    Campaign.checkpointing ~path ~interval_ns:100_000_000
      ~on_write:(fun ordinal -> if ordinal = kill_at then raise Killed)
      ()
  in
  match Campaign.run ?faults ~checkpoint:ck ck_config (echo_entry ()) with
  | r -> Some r
  | exception Killed -> None

let baseline ~faults = Campaign.run ?faults ck_config (echo_entry ())

let test_checkpointing_is_observational () =
  let entry = echo_entry () in
  let path = Filename.temp_file "nyx_ckpt_obs" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let plain = Campaign.run ck_config entry in
      let ck = Campaign.checkpointing ~path ~interval_ns:100_000_000 () in
      let checkpointed = Campaign.run ~checkpoint:ck ck_config entry in
      check_bool "checkpoint writes change nothing" true
        (Report.same_deterministic plain checkpointed);
      check_bool "checkpoint file written" true (Sys.file_exists path))

let test_resume_target_mismatch () =
  let path = Filename.temp_file "nyx_ckpt_mm" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (match run_with_kill ~faults:None ~kill_at:1 path with
      | None -> ()
      | Some _ -> Alcotest.fail "expected a kill at the first checkpoint");
      let ckpt = ok (Checkpoint.load path) in
      let other = Option.get (Nyx_targets.Registry.find "lightftp") in
      match Campaign.resume ckpt other with
      | _ -> Alcotest.fail "resume must reject a foreign checkpoint"
      | exception Invalid_argument _ -> ())

(* domain-safe: test-only lazy baseline, forced on a single domain *)
let prop_kill_resume_bit_identical =
  (* The ISSUE's determinism contract: kill at ANY checkpoint + resume ==
     the uninterrupted run, bit-for-bit (modulo wall clock). Exercised
     with and without an armed fault plan. *)
  let base_plain = lazy (baseline ~faults:None) in
  let base_faulted = lazy (baseline ~faults:(Some faults_spec)) in
  QCheck.Test.make ~name:"kill at any checkpoint + resume == straight run"
    ~count:8
    QCheck.(pair (int_range 1 10) bool)
    (fun (kill_at, with_faults) ->
      let faults = if with_faults then Some faults_spec else None in
      let expected =
        Lazy.force (if with_faults then base_faulted else base_plain)
      in
      let path = Filename.temp_file "nyx_ckpt_prop" ".bin" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
        (fun () ->
          match run_with_kill ~faults ~kill_at path with
          | Some finished ->
            (* Fewer than kill_at checkpoints fired: nothing was killed,
               the straight (checkpointed) run must already match. *)
            Report.same_deterministic finished expected
          | None ->
            let ckpt = ok (Checkpoint.load path) in
            let resumed = Campaign.resume ckpt (echo_entry ()) in
            Report.same_deterministic resumed expected))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "nyx_resilience"
    [
      ( "plan",
        [
          Alcotest.test_case "site names" `Quick test_site_names_roundtrip;
          Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
          Alcotest.test_case "spec canonical roundtrip" `Quick
            test_spec_canonical_roundtrip;
          Alcotest.test_case "NYX_FAULTS" `Quick test_of_env;
          Alcotest.test_case "deterministic schedule" `Quick
            test_plan_deterministic;
          Alcotest.test_case "zero-rate sites draw nothing" `Quick
            test_zero_rate_draws_nothing;
          Alcotest.test_case "suppressed recovery draws nothing" `Quick
            test_suppressed_no_draw;
          Alcotest.test_case "state roundtrip" `Quick test_plan_state_roundtrip;
        ] );
      ( "backoff-io",
        [
          Alcotest.test_case "capped exponential backoff" `Quick test_backoff;
          Alcotest.test_case "atomic file io" `Quick test_atomic_io;
        ] );
      ( "engine-faults",
        [
          Alcotest.test_case "restore failure ordering" `Quick
            test_restore_fail_ordering;
          Alcotest.test_case "latent snapshot corruption" `Quick
            test_snap_corrupt_latent;
          Alcotest.test_case "latent dirty-page loss" `Quick
            test_dirty_loss_latent;
          Alcotest.test_case "aux restore rejections" `Quick
            test_aux_restore_rejections;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "trace sink failure disables tracing" `Quick
            test_trace_sink_failure_disables;
          Alcotest.test_case "trace sink normal writes" `Quick
            test_trace_sink_normal_writes;
          Alcotest.test_case "pool drains after failure" `Quick
            test_pool_cancels_after_failure;
          Alcotest.test_case "pool reports lowest real failure" `Quick
            test_pool_cancelled_never_escapes;
          Alcotest.test_case "hang budget default" `Quick
            test_hang_budget_default;
          Alcotest.test_case "hang report carries budget" `Quick
            test_hang_report_carries_budget;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "no faults, no resilience block" `Quick
            test_campaign_no_faults_no_block;
          Alcotest.test_case "faults recovered, deterministic" `Slow
            test_campaign_faults_recovered_and_deterministic;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "quarantines deterministic failure" `Quick
            test_fleet_quarantines_deterministic_failure;
          Alcotest.test_case "restart recovers transient failure" `Quick
            test_fleet_restart_recovers_transient_failure;
          Alcotest.test_case "partial outcome when all die" `Quick
            test_fleet_all_quarantined_partial_outcome;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "rejects corrupt input" `Quick
            test_checkpoint_rejects_corrupt;
          Alcotest.test_case "checkpointing is observational" `Slow
            test_checkpointing_is_observational;
          Alcotest.test_case "resume rejects foreign target" `Quick
            test_resume_target_mismatch;
          QCheck_alcotest.to_alcotest prop_kill_resume_bit_identical;
        ] );
    ]
