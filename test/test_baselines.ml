open Nyx_core
open Nyx_baselines

let check_int = Alcotest.(check int)

let entry name = Option.get (Nyx_targets.Registry.find name)

let seed_program name =
  let ns = Campaign.net_spec () in
  List.hd (Campaign.make_seeds (entry name) ns)

(* Bexec *)

let test_desock_incompatibility () =
  Alcotest.(check bool) "dcmtk incompatible" true
    (match Bexec.create ~mode:Bexec.Desock (entry "dcmtk").Nyx_targets.Registry.target with
    | exception Bexec.Incompatible _ -> true
    | _ -> false);
  Alcotest.(check bool) "dnsmasq compatible" true
    (match Bexec.create ~mode:Bexec.Desock (entry "dnsmasq").Nyx_targets.Registry.target with
    | exception Bexec.Incompatible _ -> false
    | _ -> true)

let test_aflnet_exec_is_slow () =
  (* The same seed input on the same target: the restart-based AFLNet
     executor pays orders of magnitude more virtual time than Nyx-Net. *)
  let tgt = entry "lightftp" in
  let p = seed_program "lightftp" in
  let b = Bexec.create ~mode:Bexec.Aflnet tgt.Nyx_targets.Registry.target in
  let rb = Bexec.run b p in
  let ns = Campaign.net_spec () in
  let nyx = Executor.create ~net_spec:ns tgt.Nyx_targets.Registry.target in
  let rn = Executor.run_full nyx p in
  Alcotest.(check bool)
    (Printf.sprintf "aflnet %d ns vs nyx %d ns" rb.Report.exec_ns rn.Report.exec_ns)
    true
    (rb.Report.exec_ns > 20 * rn.Report.exec_ns)

let test_aflnet_resets_memory_but_not_disk () =
  (* echo's MODE state lives in memory: it must reset between execs. *)
  let tgt = entry "echo" in
  let b = Bexec.create ~mode:Bexec.Aflnet tgt.Nyx_targets.Registry.target in
  let ns = Campaign.net_spec () in
  let mode_raw = Nyx_spec.Net_spec.seed_of_packets ns [ Bytes.of_string "MODE raw\r\n" ] in
  let boom = Nyx_spec.Net_spec.seed_of_packets ns [ Bytes.of_string "BOOM\r\n" ] in
  ignore (Bexec.run b mode_raw);
  let r = Bexec.run b boom in
  Alcotest.(check bool) "memory state reset across execs" true (r.Report.status = Report.Pass)

let test_aflnet_accumulates_dcmtk_corruption () =
  (* The dcmtk spool lives on disk, which AFLNet's cleanup misses: three
     corrupting test cases crash, each one individually harmless. *)
  let tgt = entry "dcmtk" in
  let b = Bexec.create ~layout_cookie:1 ~mode:Bexec.Aflnet tgt.Nyx_targets.Registry.target in
  let ns = Campaign.net_spec () in
  let corruptor =
    Nyx_spec.Net_spec.seed_of_packets ns
      [
        Nyx_targets.Dcmtk.make_associate_rq ();
        Nyx_targets.Dcmtk.make_pdu 4 (Bytes.of_string "\x00\x08\x00\x18\xff\xffXXXX");
      ]
  in
  let r1 = Bexec.run b corruptor in
  Alcotest.(check bool) "first run silent" true (r1.Report.status = Report.Pass);
  let r2 = Bexec.run b corruptor in
  Alcotest.(check bool) "second run silent" true (r2.Report.status = Report.Pass);
  let r3 = Bexec.run b corruptor in
  (match r3.Report.status with
  | Report.Crash { kind; _ } -> Alcotest.(check string) "third crashes" "heap-corruption" kind
  | _ -> Alcotest.fail "expected accumulated crash");
  (* Nyx-Net's whole-VM snapshot resets the spool every exec: no crash. *)
  let nyx =
    Executor.create ~layout_cookie:1 ~net_spec:ns tgt.Nyx_targets.Registry.target
  in
  for _ = 1 to 5 do
    let r = Executor.run_full nyx corruptor in
    Alcotest.(check bool) "nyx never accumulates" true (r.Report.status = Report.Pass)
  done

let test_blob_mode_loses_boundaries () =
  (* lightftp parses line-based commands: the desock'd blob replay merges
     them into one read and most commands are lost. *)
  let tgt = entry "lightftp" in
  let p = seed_program "lightftp" in
  let aflnet = Bexec.create ~mode:Bexec.Aflnet tgt.Nyx_targets.Registry.target in
  ignore (Bexec.run aflnet p);
  let packet_cov = Nyx_targets.Coverage.edge_count (Bexec.coverage aflnet) in
  let ns = Campaign.net_spec () in
  let desock = Bexec.create ~mode:Bexec.Desock tgt.Nyx_targets.Registry.target in
  ignore (Bexec.run desock (Blind_campaign.blob_of_program ns p));
  let blob_cov = Nyx_targets.Coverage.edge_count (Bexec.coverage desock) in
  Alcotest.(check bool)
    (Printf.sprintf "boundary-aware %d edges > blob %d edges" packet_cov blob_cov)
    true (packet_cov > blob_cov)

let test_blob_of_program () =
  let ns = Campaign.net_spec () in
  let p =
    Nyx_spec.Net_spec.seed_of_packets ns [ Bytes.of_string "AB"; Bytes.of_string "CD" ]
  in
  let blob = Blind_campaign.blob_of_program ns p in
  check_int "connect + one packet" 2 (Array.length blob.Nyx_spec.Program.ops);
  Alcotest.(check string) "payload concatenated" "ABCD"
    (Bytes.to_string blob.Nyx_spec.Program.ops.(1).Nyx_spec.Program.data.(0))

(* Blind campaigns *)

let run_fuzzer spec name =
  Fuzzers.run spec ~budget_ns:10_000_000_000 ~max_execs:300 ~seed:3 (entry name)

let test_aflnet_campaign_runs () =
  match run_fuzzer Fuzzers.aflnet "lightftp" with
  | None -> Alcotest.fail "aflnet must run lightftp"
  | Some r ->
    Alcotest.(check string) "fuzzer name" "aflnet" r.Report.fuzzer;
    Alcotest.(check bool) "made progress" true (r.Report.final_edges > 0);
    Alcotest.(check bool) "slow throughput" true (r.Report.execs_per_sec < 100.0)

let test_aflpp_reports_na () =
  Alcotest.(check bool) "n/a on proftpd" true (run_fuzzer Fuzzers.aflpp_preeny "proftpd" = None);
  Alcotest.(check bool) "runs on openssl" true (run_fuzzer Fuzzers.aflpp_preeny "openssl" <> None)

let test_all_baselines_deterministic () =
  List.iter
    (fun spec ->
      match (run_fuzzer spec "dnsmasq", run_fuzzer spec "dnsmasq") with
      | Some a, Some b ->
        check_int (spec.Fuzzers.name ^ " execs") a.Report.execs b.Report.execs;
        check_int (spec.Fuzzers.name ^ " edges") a.Report.final_edges b.Report.final_edges
      | _ -> Alcotest.fail "dnsmasq must run everywhere")
    Fuzzers.all

let test_nyx_outperforms_aflnet_on_throughput () =
  let e = entry "lightftp" in
  let budget = 10_000_000_000 in
  let aflnet =
    Option.get (Fuzzers.run Fuzzers.aflnet ~budget_ns:budget ~max_execs:100_000 ~seed:1 e)
  in
  let nyx =
    Campaign.run
      {
        Campaign.default_config with
        Campaign.budget_ns = budget;
        max_execs = 100_000;
        policy = Policy.Aggressive;
      }
      e
  in
  Alcotest.(check bool)
    (Printf.sprintf "nyx %.0f execs/s >> aflnet %.0f execs/s" nyx.Report.execs_per_sec
       aflnet.Report.execs_per_sec)
    true
    (nyx.Report.execs_per_sec > 20.0 *. aflnet.Report.execs_per_sec)

(* IJON on Mario *)

let test_ijon_runs_mario () =
  let level = Option.get (Nyx_mario.Level.find "1-1") in
  let entry =
    {
      Nyx_targets.Registry.target = Nyx_mario.Mario_target.target level;
      seeds = Nyx_mario.Mario_target.seeds level;
    }
  in
  match Fuzzers.ijon ~budget_ns:60_000_000_000 ~max_execs:500 ~seed:1 entry with
  | None -> Alcotest.fail "ijon must run mario"
  | Some r ->
    Alcotest.(check bool) "position feedback produces coverage" true
      (r.Report.final_edges > 10)

let () =
  Alcotest.run "nyx_baselines"
    [
      ( "bexec",
        [
          Alcotest.test_case "desock compat" `Quick test_desock_incompatibility;
          Alcotest.test_case "aflnet slow" `Quick test_aflnet_exec_is_slow;
          Alcotest.test_case "memory reset, disk kept" `Quick test_aflnet_resets_memory_but_not_disk;
          Alcotest.test_case "dcmtk accumulation" `Quick test_aflnet_accumulates_dcmtk_corruption;
          Alcotest.test_case "blob loses boundaries" `Quick test_blob_mode_loses_boundaries;
          Alcotest.test_case "blob_of_program" `Quick test_blob_of_program;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "aflnet runs" `Quick test_aflnet_campaign_runs;
          Alcotest.test_case "afl++ n/a" `Quick test_aflpp_reports_na;
          Alcotest.test_case "deterministic" `Quick test_all_baselines_deterministic;
          Alcotest.test_case "throughput gap" `Quick test_nyx_outperforms_aflnet_on_throughput;
          Alcotest.test_case "ijon mario" `Quick test_ijon_runs_mario;
        ] );
    ]
