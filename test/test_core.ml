open Nyx_core

let check_int = Alcotest.(check int)

(* Coverage *)

let test_coverage_basics () =
  let c = Nyx_targets.Coverage.create () in
  check_int "empty" 0 (Nyx_targets.Coverage.edge_count c);
  Nyx_targets.Coverage.hit c 1;
  Nyx_targets.Coverage.hit c 2;
  Alcotest.(check bool) "edges recorded" true (Nyx_targets.Coverage.edge_count c >= 1);
  Nyx_targets.Coverage.reset c;
  check_int "reset" 0 (Nyx_targets.Coverage.edge_count c)

let test_coverage_edges_are_paths () =
  (* AFL-style: A->B and B->A are different edges. *)
  let c1 = Nyx_targets.Coverage.create () in
  Nyx_targets.Coverage.hit c1 10;
  Nyx_targets.Coverage.hit c1 20;
  let cells1 = ref [] in
  Nyx_targets.Coverage.iter_hits c1 (fun i _ -> cells1 := i :: !cells1);
  let c2 = Nyx_targets.Coverage.create () in
  Nyx_targets.Coverage.hit c2 20;
  Nyx_targets.Coverage.hit c2 10;
  let cells2 = ref [] in
  Nyx_targets.Coverage.iter_hits c2 (fun i _ -> cells2 := i :: !cells2);
  Alcotest.(check bool) "order-sensitive" true
    (List.sort compare !cells1 <> List.sort compare !cells2)

let test_coverage_save_restore () =
  let c = Nyx_targets.Coverage.create () in
  Nyx_targets.Coverage.hit c 1;
  let cp = Nyx_targets.Coverage.save c in
  Nyx_targets.Coverage.hit c 2;
  Nyx_targets.Coverage.hit c 3;
  let grown = Nyx_targets.Coverage.edge_count c in
  Nyx_targets.Coverage.restore c cp;
  Alcotest.(check bool) "rolled back" true (Nyx_targets.Coverage.edge_count c < grown)

let test_cumulative_merge () =
  let cum = Nyx_targets.Coverage.Cumulative.create () in
  let c = Nyx_targets.Coverage.create () in
  Nyx_targets.Coverage.hit c 1;
  Alcotest.(check bool) "first merge novel" true
    (Nyx_targets.Coverage.Cumulative.merge cum c);
  Alcotest.(check bool) "second merge not novel" false
    (Nyx_targets.Coverage.Cumulative.merge cum c);
  (* Higher hit-count buckets count as novelty, like AFL. *)
  for _ = 1 to 10 do
    Nyx_targets.Coverage.hit c 1
  done;
  Alcotest.(check bool) "bucket change is novel" true
    (Nyx_targets.Coverage.Cumulative.merge cum c)

(* Policy *)

let test_policy_short_inputs_use_root () =
  let rng = Nyx_sim.Rng.create 1 in
  List.iter
    (fun kind ->
      let p = Policy.create kind rng in
      for packets = 1 to 4 do
        Alcotest.(check bool) "root for short" true
          (Policy.decide p ~input_id:0 ~packets = `Root)
      done)
    [ Policy.None_; Policy.Balanced; Policy.Aggressive ]

let test_policy_none_always_root () =
  let p = Policy.create Policy.None_ (Nyx_sim.Rng.create 1) in
  for i = 0 to 50 do
    Alcotest.(check bool) "always root" true (Policy.decide p ~input_id:i ~packets:20 = `Root)
  done

let test_policy_balanced_distribution () =
  let p = Policy.create Policy.Balanced (Nyx_sim.Rng.create 1) in
  let roots = ref 0 and second_half = ref 0 and total = 2000 in
  for _ = 1 to total do
    match Policy.decide p ~input_id:0 ~packets:20 with
    | `Root -> incr roots
    | `At i ->
      Alcotest.(check bool) "index in range" true (i >= 1 && i <= 19);
      if i >= 10 then incr second_half
  done;
  (* ~4% root; second half gets 50% + half of the uniform draws ≈ 75%. *)
  Alcotest.(check bool) "root rate ~4%" true (!roots > 30 && !roots < 150);
  Alcotest.(check bool) "second half favored" true
    (float_of_int !second_half /. float_of_int (total - !roots) > 0.6)

let test_policy_aggressive_cycles () =
  let p = Policy.create Policy.Aggressive (Nyx_sim.Rng.create 1) in
  let packets = 8 in
  Alcotest.(check bool) "starts at end" true
    (Policy.decide p ~input_id:0 ~packets = `At (packets - 1));
  Policy.notify_no_news p ~input_id:0;
  Alcotest.(check bool) "moves earlier" true
    (Policy.decide p ~input_id:0 ~packets = `At (packets - 2));
  (* Walk to the start: wraps back to the end. *)
  for _ = 1 to packets - 2 do
    Policy.notify_no_news p ~input_id:0
  done;
  Alcotest.(check bool) "wraps" true (Policy.decide p ~input_id:0 ~packets = `At (packets - 1))

(* Corpus *)

let mk_program () =
  let ns = Campaign.net_spec () in
  Nyx_spec.Net_spec.seed_of_packets ns [ Bytes.of_string "x" ]

let test_corpus_add_schedule () =
  let c = Corpus.create () in
  let rng = Nyx_sim.Rng.create 1 in
  Alcotest.check_raises "empty" (Invalid_argument "Corpus.schedule: empty corpus")
    (fun () -> ignore (Corpus.schedule c rng));
  let p = mk_program () in
  for i = 0 to 9 do
    ignore (Corpus.add c ~program:p ~exec_ns:100 ~discovered_ns:i ~state_code:i)
  done;
  check_int "size" 10 (Corpus.size c);
  let seen = Hashtbl.create 10 in
  for _ = 1 to 400 do
    Hashtbl.replace seen (Corpus.schedule c rng).Corpus.id ()
  done;
  Alcotest.(check bool) "all entries reachable" true (Hashtbl.length seen = 10)

let test_corpus_state_aware_prefers_rare () =
  let c = Corpus.create () in
  let rng = Nyx_sim.Rng.create 1 in
  let p = mk_program () in
  (* Nine entries in state 200, one in rare state 500. *)
  for _ = 1 to 9 do
    ignore (Corpus.add c ~program:p ~exec_ns:1 ~discovered_ns:0 ~state_code:200)
  done;
  let rare = Corpus.add c ~program:p ~exec_ns:1 ~discovered_ns:0 ~state_code:500 in
  let hits = ref 0 in
  let total = 1000 in
  for _ = 1 to total do
    if (Corpus.schedule_state_aware c rng).Corpus.id = rare.Corpus.id then incr hits
  done;
  (* Uniform would give ~10%; state-aware weights the rare state at 50%. *)
  Alcotest.(check bool)
    (Printf.sprintf "rare state favored (%d/1000)" !hits)
    true (!hits > 300)

(* Executor *)

let echo_entry () = Option.get (Nyx_targets.Registry.find "echo")

let mk_exec () =
  let ns = Campaign.net_spec () in
  let entry = echo_entry () in
  (Executor.create ~net_spec:ns entry.Nyx_targets.Registry.target, ns)

let program_of ns packets = Nyx_spec.Net_spec.seed_of_packets ns (List.map Bytes.of_string packets)

let test_executor_run_full () =
  let exec, ns = mk_exec () in
  let r = Executor.run_full exec (program_of ns [ "hello\r\n" ]) in
  Alcotest.(check bool) "pass" true (r.Report.status = Report.Pass);
  Alcotest.(check bool) "coverage collected" true
    (Nyx_targets.Coverage.edge_count (Executor.coverage exec) > 0);
  Alcotest.(check bool) "virtual time charged" true (r.Report.exec_ns > 0)

let test_executor_detects_crash () =
  let exec, ns = mk_exec () in
  let r = Executor.run_full exec (program_of ns [ "MODE raw\r\n"; "BOOM\r\n" ]) in
  match r.Report.status with
  | Report.Crash { kind; _ } -> Alcotest.(check string) "kind" "assertion" kind
  | _ -> Alcotest.fail "expected crash"

let test_executor_resets_between_runs () =
  let exec, ns = mk_exec () in
  (* Set raw mode in one run; next run must not remember it. *)
  let r1 = Executor.run_full exec (program_of ns [ "MODE raw\r\n" ]) in
  Alcotest.(check bool) "r1 pass" true (r1.Report.status = Report.Pass);
  let r2 = Executor.run_full exec (program_of ns [ "BOOM\r\n" ]) in
  Alcotest.(check bool) "state was reset" true (r2.Report.status = Report.Pass)

let test_executor_deterministic () =
  let exec, ns = mk_exec () in
  let p = program_of ns [ "abc\r\n"; "MODE raw\r\n"; "defg\r\n" ] in
  (* The very first run restores a pristine VM (cheaper); compare
     steady-state executions. *)
  ignore (Executor.run_full exec p);
  let r1 = Executor.run_full exec p in
  let e1 = Nyx_targets.Coverage.edge_count (Executor.coverage exec) in
  let r2 = Executor.run_full exec p in
  let e2 = Nyx_targets.Coverage.edge_count (Executor.coverage exec) in
  Alcotest.(check bool) "same cost" true (r1.Report.exec_ns = r2.Report.exec_ns);
  check_int "same coverage" e1 e2

let test_executor_session_lifecycle () =
  let exec, ns = mk_exec () in
  let p = Nyx_spec.Program.with_snapshot_at (program_of ns [ "MODE raw\r\n"; "x\r\n" ]) 2 in
  match Executor.start_session exec p with
  | Error _ -> Alcotest.fail "session should start"
  | Ok session ->
    check_int "suffix after snapshot op" 3 (Executor.suffix_start session);
    (* The prefix set raw mode; a BOOM suffix crashes every time. *)
    let boom =
      {
        p with
        Nyx_spec.Program.ops =
          Array.append
            (Array.sub p.Nyx_spec.Program.ops 0 3)
            [|
              {
                Nyx_spec.Program.node = 2 (* packet *);
                args = [| 0 |];
                data = [| Bytes.of_string "BOOM\r\n" |];
              };
            |];
      }
    in
    (match Nyx_spec.Program.validate boom with
    | Ok () -> ()
    | Error m -> Alcotest.fail m);
    for _ = 1 to 3 do
      let r = Executor.run_suffix exec session boom in
      match r.Report.status with
      | Report.Crash { kind; _ } -> Alcotest.(check string) "crashes" "assertion" kind
      | _ -> Alcotest.fail "expected crash in suffix"
    done;
    Executor.end_session exec session;
    (* Back at root: raw mode gone. *)
    let r = Executor.run_full exec (program_of ns [ "BOOM\r\n" ]) in
    Alcotest.(check bool) "root state restored" true (r.Report.status = Report.Pass)

let test_executor_suffix_cheaper_than_full () =
  let entry = Option.get (Nyx_targets.Registry.find "exim") in
  let ns = Campaign.net_spec () in
  let exec = Executor.create ~net_spec:ns entry.Nyx_targets.Registry.target in
  let packets =
    [ "EHLO c\r\n"; "MAIL FROM:<a@b>\r\n"; "RCPT TO:<c@d>\r\n"; "DATA\r\n"; "hi\r\n.\r\n" ]
  in
  let p = program_of ns packets in
  let full = Executor.run_full exec p in
  let snap = Nyx_spec.Program.with_snapshot_at p 5 in
  match Executor.start_session exec snap with
  | Error _ -> Alcotest.fail "session"
  | Ok session ->
    let suffix = Executor.run_suffix exec session snap in
    Executor.end_session exec session;
    Alcotest.(check bool)
      (Printf.sprintf "suffix (%d ns) much cheaper than full (%d ns)"
         suffix.Report.exec_ns full.Report.exec_ns)
      true
      (suffix.Report.exec_ns * 3 < full.Report.exec_ns)

(* Campaign *)

let quick_config policy =
  {
    Campaign.default_config with
    Campaign.budget_ns = 8_000_000_000;
    max_execs = 25_000;
    policy;
  }

let test_campaign_finds_echo_crash () =
  let r = Campaign.run (quick_config Policy.Aggressive) (echo_entry ()) in
  Alcotest.(check bool) "found the planted bug" true (Report.found_kind r "assertion");
  Alcotest.(check bool) "coverage grew" true (r.Report.final_edges > 5);
  Alcotest.(check bool) "corpus grew" true (r.Report.corpus_size > 1)

let test_campaign_reproducible () =
  let r1 = Campaign.run (quick_config Policy.Balanced) (echo_entry ()) in
  let r2 = Campaign.run (quick_config Policy.Balanced) (echo_entry ()) in
  check_int "same execs" r1.Report.execs r2.Report.execs;
  check_int "same coverage" r1.Report.final_edges r2.Report.final_edges;
  check_int "same crashes" (List.length r1.Report.crashes) (List.length r2.Report.crashes)

let test_campaign_seed_changes_run () =
  let r1 = Campaign.run (quick_config Policy.Balanced) (echo_entry ()) in
  let r2 =
    Campaign.run { (quick_config Policy.Balanced) with Campaign.seed = 999 } (echo_entry ())
  in
  Alcotest.(check bool) "different trajectory" true
    (r1.Report.execs <> r2.Report.execs || r1.Report.final_edges <> r2.Report.final_edges)

let test_campaign_respects_budget () =
  let cfg = { (quick_config Policy.None_) with Campaign.budget_ns = 100_000_000 } in
  let r = Campaign.run cfg (echo_entry ()) in
  Alcotest.(check bool) "stops near budget" true
    (r.Report.virtual_ns < 2 * cfg.Campaign.budget_ns)

let test_campaign_timeline_monotonic () =
  let r = Campaign.run (quick_config Policy.Aggressive) (echo_entry ()) in
  let samples = Nyx_sim.Stats.Timeline.samples r.Report.timeline in
  Alcotest.(check bool) "non-empty" true (samples <> []);
  let rec mono = function
    | (t1, v1) :: ((t2, v2) :: _ as rest) -> t1 <= t2 && v1 <= v2 && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "monotonic" true (mono samples)

let test_campaign_crash_input_reproduces () =
  let r = Campaign.run (quick_config Policy.Aggressive) (echo_entry ()) in
  match List.find_opt (fun c -> c.Report.kind = "assertion") r.Report.crashes with
  | None -> Alcotest.fail "no crash found"
  | Some crash -> (
    let ns = Campaign.net_spec () in
    match Nyx_spec.Program.parse ns.Nyx_spec.Net_spec.spec crash.Report.input with
    | Error m -> Alcotest.fail ("reproducer does not parse: " ^ m)
    | Ok program -> (
      let entry = echo_entry () in
      let exec = Executor.create ~net_spec:ns entry.Nyx_targets.Registry.target in
      let result = Executor.run_full exec program in
      match result.Report.status with
      | Report.Crash { kind; _ } -> Alcotest.(check string) "reproduces" "assertion" kind
      | _ -> Alcotest.fail "reproducer did not crash"))

let test_median_result () =
  let mk edges =
    {
      Report.fuzzer = "x";
      target = "t";
      run_seed = 0;
      timeline = Nyx_sim.Stats.Timeline.create ();
      exec_timeline = Nyx_sim.Stats.Timeline.create ();
      final_edges = edges;
      execs = 0;
      virtual_ns = 1;
      execs_per_sec = 0.0;
      crashes = [];
      corpus_size = 0;
      solved_ns = None;
      snapshot_stats = None;
      wall_s = 0.0;
      phase_profile = None;
      resilience = None;
      placement = None;
      mutation = None;
      peer = None;
    }
  in
  check_int "median of three" 20
    (Campaign.median_result [ mk 30; mk 10; mk 20 ]).Report.final_edges





(* Report helpers *)

let test_report_helpers () =
  let crash kind =
    { Report.kind; detail = "d"; found_ns = 1; found_exec = 1; input = Bytes.empty }
  in
  let base =
    {
      Report.fuzzer = "f";
      target = "t";
      run_seed = 0;
      timeline = Nyx_sim.Stats.Timeline.create ();
      exec_timeline = Nyx_sim.Stats.Timeline.create ();
      final_edges = 10;
      execs = 100;
      virtual_ns = 1_000_000_000;
      execs_per_sec = 100.0;
      crashes = [];
      corpus_size = 5;
      solved_ns = None;
      snapshot_stats = None;
      wall_s = 0.0;
      phase_profile = None;
      resilience = None;
      placement = None;
      mutation = None;
      peer = None;
    }
  in
  Alcotest.(check bool) "no crashes" false (Report.crashed base);
  let with_solve = { base with Report.crashes = [ crash "level-solved" ] } in
  Alcotest.(check bool) "a solve is not a crash" false (Report.crashed with_solve);
  let with_crash = { base with Report.crashes = [ crash "segfault" ] } in
  Alcotest.(check bool) "real crash" true (Report.crashed with_crash);
  Alcotest.(check bool) "found kind" true (Report.found_kind with_crash "segfault");
  Alcotest.(check bool) "missing kind" false (Report.found_kind with_crash "oom");
  let rendered = Format.asprintf "%a" Report.pp_summary with_crash in
  Alcotest.(check bool) "summary mentions fuzzer and target" true
    (String.length rendered > 0)

(* Typed IPC spec (custom opcode handlers) *)

let ipc_entry () = Option.get (Nyx_targets.Registry.find "firefox-ipc")

let test_typed_spec_seed_drives_target () =
  let ts = Nyx_targets.Ipc_spec.create () in
  let entry = ipc_entry () in
  let ns = Campaign.net_spec () in
  let exec =
    Executor.create ~custom:(Nyx_targets.Ipc_spec.handler ts) ~net_spec:ns
      entry.Nyx_targets.Registry.target
  in
  let r = Executor.run_full exec (Nyx_targets.Ipc_spec.seed ts) in
  Alcotest.(check bool) "typed seed passes" true (r.Report.status = Report.Pass);
  Alcotest.(check bool) "exercises the broker" true
    (Nyx_targets.Coverage.edge_count (Executor.coverage exec) > 5)

let test_typed_spec_expresses_uaf () =
  (* destroy borrows rather than consumes, so message-after-destroy is a
     well-typed program — and triggers the planted use-after-free. *)
  let ts = Nyx_targets.Ipc_spec.create () in
  let b = Nyx_spec.Builder.create ts.Nyx_targets.Ipc_spec.spec in
  let a =
    List.hd (Nyx_spec.Builder.call b "create" ~data:[ Bytes.of_string "\x03" ] [])
  in
  ignore (Nyx_spec.Builder.call b "destroy" [ a ]);
  ignore (Nyx_spec.Builder.call b "message" ~data:[ Bytes.of_string "boom" ] [ a ]);
  let program = Nyx_spec.Builder.build b in
  let entry = ipc_entry () in
  let ns = Campaign.net_spec () in
  let exec =
    Executor.create ~custom:(Nyx_targets.Ipc_spec.handler ts) ~net_spec:ns
      entry.Nyx_targets.Registry.target
  in
  match (Executor.run_full exec program).Report.status with
  | Report.Crash { kind = "use-after-free"; _ } -> ()
  | _ -> Alcotest.fail "typed UAF witness must crash"

let test_typed_campaign_finds_uaf_fast () =
  let ts = Nyx_targets.Ipc_spec.create () in
  let cfg =
    {
      Campaign.default_config with
      Campaign.budget_ns = 20_000_000_000;
      max_execs = 5_000;
      policy = Policy.Aggressive;
    }
  in
  let r =
    Campaign.run
      ~seeds:[ Nyx_targets.Ipc_spec.seed ts ]
      ~custom:(Nyx_targets.Ipc_spec.handler ts) cfg (ipc_entry ())
  in
  Alcotest.(check bool) "typed campaign finds the use-after-free" true
    (Report.found_kind r "use-after-free")

(* Fleet *)

let test_fleet_parallel_solve () =
  let level = Option.get (Nyx_mario.Level.find "1-1") in
  let entry =
    {
      Nyx_targets.Registry.target = Nyx_mario.Mario_target.target level;
      seeds = Nyx_mario.Mario_target.seeds level;
    }
  in
  let config =
    {
      Campaign.default_config with
      Campaign.budget_ns = 120_000_000_000;
      max_execs = 30_000;
      policy = Policy.Aggressive;
      stop_on_solve = true;
    }
  in
  let solo = Campaign.run config entry in
  let fleet = Fleet.run ~instances:4 ~config entry in
  Alcotest.(check bool) "fleet solves" true (fleet.Fleet.first_solve_ns <> None);
  Alcotest.(check bool) "fleet counts instances" true (fleet.Fleet.instances = 4);
  match (solo.Report.solved_ns, fleet.Fleet.first_solve_ns) with
  | Some solo_t, Some fleet_t ->
    Alcotest.(check bool) "parallel minimum is no slower than member seed" true
      (fleet_t <= solo_t)
  | _ -> ()

(* Minimizer *)

let test_minimizer_shrinks_echo_crash () =
  let exec, ns = mk_exec () in
  let noisy =
    program_of ns
      [ "padding one\r\n"; "MODE raw\r\n"; "more padding\r\n"; "BOOMnoise trailing\r\n";
        "trailing garbage\r\n" ]
  in
  (match (Executor.run_full exec noisy).Report.status with
  | Report.Crash { kind = "assertion"; _ } -> ()
  | _ -> Alcotest.fail "setup: noisy program must crash");
  let minimized, execs =
    Minimizer.minimize ~run:(Executor.run_full exec)
      ~keep:(Minimizer.keep_crash_kind "assertion")
      noisy
  in
  Alcotest.(check bool) "verified executions spent" true (execs > 1);
  Alcotest.(check bool) "smaller" true
    (Minimizer.serialized_size minimized < Minimizer.serialized_size noisy);
  (* The minimal witness: connect + MODE raw + BOOM. *)
  check_int "three ops" 3 (Array.length minimized.Nyx_spec.Program.ops);
  (match (Executor.run_full exec minimized).Report.status with
  | Report.Crash { kind = "assertion"; _ } -> ()
  | _ -> Alcotest.fail "minimized program must still crash")

let test_minimizer_rejects_non_witness () =
  let exec, ns = mk_exec () in
  let benign = program_of ns [ "hello\r\n" ] in
  Alcotest.check_raises "not a witness"
    (Invalid_argument "Minimizer.minimize: program does not satisfy the predicate")
    (fun () ->
      ignore
        (Minimizer.minimize ~run:(Executor.run_full exec)
           ~keep:(Minimizer.keep_crash_kind "assertion")
           benign))

let test_minimizer_coverage_witness () =
  (* Minimize against a coverage predicate instead of a crash. *)
  let exec, ns = mk_exec () in
  let p = program_of ns [ "MODE raw\r\n"; "x\r\n"; "y\r\n" ] in
  let keep (r : Report.exec_result) =
    r.Report.status = Report.Pass
    && Nyx_targets.Coverage.edge_count (Executor.coverage exec) > 4
  in
  let minimized, _ = Minimizer.minimize ~run:(Executor.run_full exec) ~keep p in
  Alcotest.(check bool) "still satisfies" true (keep (Executor.run_full exec minimized));
  Alcotest.(check bool) "not larger" true
    (Minimizer.serialized_size minimized <= Minimizer.serialized_size p)

let () =
  Alcotest.run "nyx_core"
    [
      ( "coverage",
        [
          Alcotest.test_case "basics" `Quick test_coverage_basics;
          Alcotest.test_case "edge direction" `Quick test_coverage_edges_are_paths;
          Alcotest.test_case "save/restore" `Quick test_coverage_save_restore;
          Alcotest.test_case "cumulative" `Quick test_cumulative_merge;
        ] );
      ( "policy",
        [
          Alcotest.test_case "short inputs" `Quick test_policy_short_inputs_use_root;
          Alcotest.test_case "none" `Quick test_policy_none_always_root;
          Alcotest.test_case "balanced" `Quick test_policy_balanced_distribution;
          Alcotest.test_case "aggressive cycles" `Quick test_policy_aggressive_cycles;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "add/schedule" `Quick test_corpus_add_schedule;
          Alcotest.test_case "state aware" `Quick test_corpus_state_aware_prefers_rare;
        ] );
      ( "executor",
        [
          Alcotest.test_case "run full" `Quick test_executor_run_full;
          Alcotest.test_case "crash" `Quick test_executor_detects_crash;
          Alcotest.test_case "resets" `Quick test_executor_resets_between_runs;
          Alcotest.test_case "deterministic" `Quick test_executor_deterministic;
          Alcotest.test_case "session" `Quick test_executor_session_lifecycle;
          Alcotest.test_case "suffix cheaper" `Quick test_executor_suffix_cheaper_than_full;
        ] );
      ( "report", [ Alcotest.test_case "helpers" `Quick test_report_helpers ] );
      ( "typed spec",
        [
          Alcotest.test_case "seed drives target" `Quick test_typed_spec_seed_drives_target;
          Alcotest.test_case "expresses UAF" `Quick test_typed_spec_expresses_uaf;
          Alcotest.test_case "campaign finds UAF" `Quick test_typed_campaign_finds_uaf_fast;
        ] );
      ( "fleet", [ Alcotest.test_case "parallel solve" `Quick test_fleet_parallel_solve ] );
      ( "minimizer",
        [
          Alcotest.test_case "shrinks crash" `Quick test_minimizer_shrinks_echo_crash;
          Alcotest.test_case "rejects non-witness" `Quick test_minimizer_rejects_non_witness;
          Alcotest.test_case "coverage witness" `Quick test_minimizer_coverage_witness;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "finds crash" `Quick test_campaign_finds_echo_crash;
          Alcotest.test_case "reproducible" `Quick test_campaign_reproducible;
          Alcotest.test_case "seed matters" `Quick test_campaign_seed_changes_run;
          Alcotest.test_case "budget" `Quick test_campaign_respects_budget;
          Alcotest.test_case "timeline" `Quick test_campaign_timeline_monotonic;
          Alcotest.test_case "crash reproduces" `Quick test_campaign_crash_input_reproduces;
          Alcotest.test_case "median" `Quick test_median_result;
        ] );
    ]
