open Nyx_targets
open Nyx_netemu

let check_int = Alcotest.(check int)
let b = Bytes.of_string

(* Boot a registry target on a fresh VM with a hand-driven peer side. *)
type harness = {
  net : Net.t;
  ctx : Ctx.t;
  rt : Target.runtime;
  entry : Registry.entry;
}

let boot ?asan ?(layout_cookie = 1) name =
  let entry = Option.get (Registry.find name) in
  let clock = Nyx_sim.Clock.create () in
  let vm = Nyx_vm.Vm.create clock in
  let net = Net.create clock in
  let ctx = Ctx.of_vm ?asan ~layout_cookie ~net vm in
  let rt = Target.boot entry.Registry.target ctx in
  Target.pump rt;
  { net; ctx; rt; entry }

let port h = h.entry.Registry.target.Target.info.Target.port

let connect ?(drain_banner = true) h =
  let flow = Option.get (Net.connect_peer h.net ~port:(port h)) in
  Target.pump h.rt;
  if drain_banner then ignore (Net.responses h.net flow);
  flow

(* Send one packet and return the replies as strings. *)
let send h flow data =
  Net.send_peer h.net flow (b data);
  Target.pump h.rt;
  List.map Bytes.to_string (Net.responses h.net flow)

let send_bytes h flow data =
  Net.send_peer h.net flow data;
  Target.pump h.rt;
  List.map Bytes.to_string (Net.responses h.net flow)

let send_udp h ?flow data =
  let flow = Net.udp_send_peer h.net ~port:(port h) ?flow data in
  Target.pump h.rt;
  flow

let first_reply = function
  | [] -> Alcotest.fail "expected a reply"
  | r :: _ -> r

let code reply = int_of_string (String.sub reply 0 3)

let expect_crash kind f =
  match f () with
  | exception Ctx.Crash { kind = k; _ } -> Alcotest.(check string) "crash kind" kind k
  | _ -> Alcotest.fail (Printf.sprintf "expected %s crash" kind)

(* All targets boot and listen *)

let test_all_targets_boot () =
  List.iter
    (fun entry ->
      let name = entry.Registry.target.Target.info.Target.name in
      let h = boot name in
      match entry.Registry.target.Target.info.Target.role with
      | Target.Server ->
        check_int (name ^ " listens on its port") 1
          (List.length (Net.listening_ports h.net))
      | Target.Client ->
        check_int (name ^ " dialed out") 1 (List.length (Net.outbound_flows h.net)))
    (Registry.all ())

let test_all_seeds_execute_cleanly () =
  (* Seed traffic is well-formed: replaying it must not crash anything. *)
  List.iter
    (fun entry ->
      let name = entry.Registry.target.Target.info.Target.name in
      let ns = Nyx_spec.Net_spec.create () in
      let exec = Nyx_core.Executor.create ~net_spec:ns entry.Registry.target in
      List.iter
        (fun program ->
          let r = Nyx_core.Executor.run_full exec program in
          match r.Nyx_core.Report.status with
          | Nyx_core.Report.Pass -> ()
          | Nyx_core.Report.Crash { kind; detail } ->
            Alcotest.fail (Printf.sprintf "%s seed crashed: %s (%s)" name kind detail)
          | Nyx_core.Report.Hang -> Alcotest.fail (name ^ " seed hung"))
        (Registry.seed_programs entry ns))
    (Registry.all ())

(* FTP family *)

let test_ftp_banner_and_auth () =
  let h = boot "bftpd" in
  let flow = connect ~drain_banner:false h in
  (* Banner arrives on connect. *)
  Alcotest.(check bool) "banner" true
    (List.exists
       (fun r -> String.length r > 3 && String.sub r 0 3 = "220")
       (List.map Bytes.to_string (Net.responses h.net flow)));
  check_int "auth required" 530 (code (first_reply (send h flow "PWD\r\n")));
  check_int "user accepted" 331 (code (first_reply (send h flow "USER alice\r\n")));
  check_int "pass accepted" 230 (code (first_reply (send h flow "PASS secret\r\n")));
  check_int "now allowed" 257 (code (first_reply (send h flow "PWD\r\n")))

let test_ftp_pass_before_user () =
  let h = boot "bftpd" in
  let flow = connect h in
  check_int "503 out of order" 503 (code (first_reply (send h flow "PASS x\r\n")))

let test_ftp_stor_retr_state () =
  let h = boot "lightftp" in
  let flow = connect h in
  ignore (send h flow "USER u\r\n");
  ignore (send h flow "PASS p\r\n");
  check_int "missing file" 550 (code (first_reply (send h flow "RETR nope.txt\r\n")));
  check_int "stored" 226 (code (first_reply (send h flow "STOR nope.txt\r\n")));
  check_int "now present" 226 (code (first_reply (send h flow "RETR nope.txt\r\n")))

let test_ftp_unsupported_command () =
  let h = boot "lightftp" in
  let flow = connect h in
  ignore (send h flow "USER u\r\n");
  ignore (send h flow "PASS p\r\n");
  (* lightftp's reduced command set lacks SITE. *)
  check_int "502 unsupported" 502 (code (first_reply (send h flow "SITE CHMOD 1 x\r\n")))

let login_ftp h flow =
  ignore (send h flow "USER u\r\n");
  ignore (send h flow "PASS p\r\n")

let test_proftpd_bug_needs_full_state () =
  (* Without the stored file, the crafted CHMOD is harmless. *)
  let h = boot "proftpd" in
  let flow = connect h in
  login_ftp h flow;
  check_int "no stored file" 550 (code (first_reply (send h flow "SITE CHMOD 7777 f.txt\r\n")));
  (* Benign mode on the stored file is fine. *)
  ignore (send h flow "STOR f.txt\r\n");
  check_int "benign chmod ok" 200 (code (first_reply (send h flow "SITE CHMOD 644 f.txt\r\n")));
  (* The full sequence with an oversized octal mode crashes. *)
  expect_crash "heap-overflow" (fun () -> send h flow "SITE CHMOD 7777 f.txt\r\n")

let test_pure_ftpd_quota_needs_accumulation () =
  let h = boot "pure-ftpd" in
  let flow = connect h in
  login_ftp h flow;
  for i = 1 to 19 do
    check_int "stores fine" 226 (code (first_reply (send h flow (Printf.sprintf "STOR f%d\r\n" i))))
  done;
  ignore (send h flow "STOR f20\r\n");
  expect_crash "oom-internal" (fun () -> send h flow "STOR f21\r\n")

(* dnsmasq *)

let test_dnsmasq_valid_query () =
  let h = boot "dnsmasq" in
  let q = Dnsmasq.make_query ~id:0xBEEF "host.example.com" in
  let flow = Option.get (send_udp h q) in
  let replies = Net.responses h.net flow in
  Alcotest.(check bool) "got a reply" true (replies <> []);
  let r = List.hd replies in
  check_int "id echoed" 0xBEEF ((Char.code (Bytes.get r 0) lsl 8) lor Char.code (Bytes.get r 1))

let test_dnsmasq_short_packet_ignored () =
  let h = boot "dnsmasq" in
  let flow = Option.get (send_udp h (b "tiny")) in
  Alcotest.(check (list string)) "no reply" [] (List.map Bytes.to_string (Net.responses h.net flow))

let test_dnsmasq_pointer_loop_crash () =
  let h = boot "dnsmasq" in
  let q = Dnsmasq.make_query "a.b" in
  (* Overwrite the first label length with a self-pointing compression
     pointer. *)
  Bytes.set q 12 '\xC0';
  Bytes.set q 13 '\x0C';
  expect_crash "stack-exhaustion" (fun () -> ignore (send_udp h q))

let test_dnsmasq_backward_pointer_ok () =
  let h = boot "dnsmasq" in
  let q = Dnsmasq.make_query "a.b" in
  (* Pointer to offset 4 (inside the header, reads as garbage label but
     terminates). *)
  Bytes.set q 12 '\xC0';
  Bytes.set q 13 '\x04';
  Alcotest.(check bool) "no crash" true (send_udp h q <> None)

(* tinydtls *)

let test_tinydtls_handshake () =
  let h = boot "tinydtls" in
  let flow = Option.get (send_udp h (Tinydtls.make_client_hello ())) in
  Alcotest.(check bool) "hello-verify sent" true (Net.responses h.net flow <> []);
  ignore (send_udp h ~flow (Tinydtls.make_client_hello ~with_cookie:true ()));
  Alcotest.(check bool) "server hello sent" true (Net.responses h.net flow <> [])

let test_tinydtls_fragment_underflow () =
  let h = boot "tinydtls" in
  let hello = Tinydtls.make_client_hello () in
  (* fragment_length lives at bytes 22..24 of the record; blow it up past
     the message length. *)
  Bytes.set hello 22 '\xFF';
  expect_crash "integer-underflow" (fun () -> ignore (send_udp h hello))

(* dcmtk *)

let oversized_data_pdu () =
  (* Element length 0xFFFF inside a small PDU: reads past the 64-byte
     parse buffer. *)
  Dcmtk.make_pdu 4 (b "\x00\x08\x00\x18\xff\xffXXXX")

let test_dcmtk_association_state_machine () =
  let h = boot "dcmtk" in
  let flow = connect h in
  (* Data before association is aborted (PDU type 7). *)
  let replies = send_bytes h flow (Dcmtk.make_echo_data ()) in
  check_int "abort" 7 (Char.code (List.hd replies).[0]);
  let replies = send_bytes h flow (Dcmtk.make_associate_rq ()) in
  check_int "associate-ac" 2 (Char.code (List.hd replies).[0]);
  let replies = send_bytes h flow (Dcmtk.make_echo_data ()) in
  check_int "data echoed" 4 (Char.code (List.hd replies).[0])

let test_dcmtk_oob_with_asan_crashes_immediately () =
  let h = boot ~asan:true "dcmtk" in
  let flow = connect h in
  ignore (send_bytes h flow (Dcmtk.make_associate_rq ()));
  match send_bytes h flow (oversized_data_pdu ()) with
  | exception Nyx_vm.Guest_heap.Heap_oob _ -> ()
  | _ -> Alcotest.fail "expected ASan violation"

let test_dcmtk_oob_without_asan_is_silent_on_good_layout () =
  (* layout_cookie=1 (1 land 7 <> 0): a single corruption survives. *)
  let h = boot ~layout_cookie:1 "dcmtk" in
  let flow = connect h in
  ignore (send_bytes h flow (Dcmtk.make_associate_rq ()));
  ignore (send_bytes h flow (oversized_data_pdu ()));
  Alcotest.(check pass) "survived one corruption" () ()

let test_dcmtk_oob_unlucky_layout_crashes () =
  let h = boot ~layout_cookie:8 "dcmtk" in
  let flow = connect h in
  ignore (send_bytes h flow (Dcmtk.make_associate_rq ()));
  expect_crash "segfault" (fun () -> send_bytes h flow (oversized_data_pdu ()))

let test_dcmtk_corruption_accumulates_across_connections () =
  (* Three corrupting associations in one process lifetime exhaust the
     budget — the state AFLNet accumulates and snapshots reset. *)
  let h = boot ~layout_cookie:1 "dcmtk" in
  let corrupt_once () =
    let flow = connect h in
    ignore (send_bytes h flow (Dcmtk.make_associate_rq ()));
    ignore (send_bytes h flow (oversized_data_pdu ()));
    Net.close_peer h.net flow;
    Target.pump h.rt
  in
  corrupt_once ();
  corrupt_once ();
  expect_crash "heap-corruption" corrupt_once

(* exim *)

let exim_reach_data h flow =
  check_int "greeting" 250 (code (first_reply (send h flow "EHLO client\r\n")));
  check_int "mail" 250 (code (first_reply (send h flow "MAIL FROM:<a@b>\r\n")));
  check_int "rcpt" 250 (code (first_reply (send h flow "RCPT TO:<c@d>\r\n")));
  check_int "data" 354 (code (first_reply (send h flow "DATA\r\n")))

let test_exim_state_machine_order () =
  let h = boot "exim" in
  let flow = connect h in
  check_int "mail before ehlo" 503 (code (first_reply (send h flow "MAIL FROM:<a@b>\r\n")));
  check_int "rcpt before mail" 503 (code (first_reply (send h flow "RCPT TO:<a@b>\r\n")));
  check_int "data before rcpt" 503 (code (first_reply (send h flow "DATA\r\n")))

let test_exim_message_accepted () =
  let h = boot "exim" in
  let flow = connect h in
  exim_reach_data h flow;
  check_int "accepted" 250
    (code (first_reply (send h flow "Subject: hi\r\n\r\nbody\r\n.\r\n")))

let test_exim_header_overflow () =
  let h = boot "exim" in
  let flow = connect h in
  exim_reach_data h flow;
  (* >100 byte header line with the colon beyond position 50. *)
  let long_header = String.make 70 'X' ^ ": " ^ String.make 60 'y' ^ "\r\n" in
  expect_crash "buffer-overflow" (fun () -> send h flow long_header)

let test_exim_long_header_early_colon_is_safe () =
  let h = boot "exim" in
  let flow = connect h in
  exim_reach_data h flow;
  let long_header = "Subject: " ^ String.make 150 'y' ^ "\r\n" in
  ignore (send h flow long_header);
  Alcotest.(check pass) "no crash" () ()

(* live555 *)

let test_live555_rtsp_flow () =
  let h = boot "live555" in
  let flow = connect h in
  let r = first_reply (send h flow "OPTIONS rtsp://s/x RTSP/1.0\r\nCSeq: 1\r\n\r\n") in
  Alcotest.(check bool) "options ok" true (Proto_util.starts_with_ci ~prefix:"RTSP/1.0 200" r);
  let r = first_reply (send h flow "SETUP rtsp://s/x RTSP/1.0\r\nCSeq: 2\r\nTransport: RTP/AVP;unicast;client_port=1-2\r\n\r\n") in
  Alcotest.(check bool) "setup before describe rejected" true
    (Proto_util.starts_with_ci ~prefix:"RTSP/1.0 455" r);
  ignore (send h flow "DESCRIBE rtsp://s/x RTSP/1.0\r\nCSeq: 3\r\nAccept: application/sdp\r\n\r\n");
  let r = first_reply (send h flow "SETUP rtsp://s/x RTSP/1.0\r\nCSeq: 4\r\nTransport: RTP/AVP;unicast;client_port=1-2\r\n\r\n") in
  Alcotest.(check bool) "setup ok" true (Proto_util.starts_with_ci ~prefix:"RTSP/1.0 200" r)

let test_live555_transport_null_deref () =
  let h = boot "live555" in
  let flow = connect h in
  ignore (send h flow "DESCRIBE rtsp://s/x RTSP/1.0\r\nCSeq: 1\r\nAccept: application/sdp\r\n\r\n");
  expect_crash "null-deref" (fun () ->
      send h flow "SETUP rtsp://s/x RTSP/1.0\r\nCSeq: 2\r\nTransport: RTP/AVP;unicast\r\n\r\n")

(* openssh *)

let test_openssh_handshake () =
  let h = boot "openssh" in
  let flow = connect h in
  ignore (send h flow "SSH-2.0-TestClient\r\n");
  let replies = send_bytes h flow (Openssh.make_kexinit ()) in
  Alcotest.(check bool) "kexinit answered" true (replies <> []);
  let replies = send_bytes h flow (Openssh.make_packet 21 Bytes.empty) in
  check_int "newkeys echoed" 21 (Char.code (List.hd replies).[4])

let test_openssh_rejects_out_of_order () =
  let h = boot "openssh" in
  let flow = connect h in
  ignore (send h flow "SSH-2.0-TestClient\r\n");
  (* NEWKEYS before KEXINIT: protocol error (disconnect type 1). *)
  let replies = send_bytes h flow (Openssh.make_packet 21 Bytes.empty) in
  check_int "disconnect" 1 (Char.code (List.hd replies).[4])

let test_openssh_coalesced_frames () =
  let h = boot "openssh" in
  let flow = connect h in
  ignore (send h flow "SSH-2.0-TestClient\r\n");
  (* Two SSH packets in one TCP segment: both must be processed. *)
  let both = Bytes.cat (Openssh.make_kexinit ()) (Openssh.make_packet 21 Bytes.empty) in
  let replies = send_bytes h flow both in
  check_int "two replies" 2 (List.length replies)

(* openssl *)

let test_openssl_client_hello () =
  let h = boot "openssl" in
  let flow = connect h in
  let replies = send_bytes h flow (Openssl_srv.make_client_hello ~sni:"x.example" ()) in
  check_int "handshake record" 22 (Char.code (List.hd replies).[0])

let test_openssl_ccs_before_hello_alerts () =
  let h = boot "openssl" in
  let flow = connect h in
  let ccs = Bytes.of_string "\x14\x03\x03\x00\x01\x01" in
  let replies = send_bytes h flow ccs in
  check_int "alert" 21 (Char.code (List.hd replies).[0])

(* kamailio *)

let test_kamailio_methods () =
  let h = boot "kamailio" in
  let invite = "INVITE sip:u@h SIP/2.0\r\nCSeq: 1 INVITE\r\nVia: SIP/2.0/UDP c\r\n\r\n" in
  let flow = Option.get (send_udp h (b invite)) in
  let r = List.hd (Net.responses h.net flow) in
  Alcotest.(check bool) "ringing" true
    (Proto_util.starts_with_ci ~prefix:"SIP/2.0 180" (Bytes.to_string r));
  let flow2 = Option.get (send_udp h (b "garbage packet")) in
  let r2 = List.hd (Net.responses h.net flow2) in
  Alcotest.(check bool) "bad request" true
    (Proto_util.starts_with_ci ~prefix:"SIP/2.0 400" (Bytes.to_string r2))

(* forked-daapd *)

let test_daapd_routes_and_forking () =
  let h = boot "forked-daapd" in
  let before = Net.open_socket_count h.net in
  let flow = connect h in
  Alcotest.(check bool) "accepted" true (Net.open_socket_count h.net > before);
  let r = first_reply (send h flow "GET /server-info HTTP/1.1\r\nHost: x\r\n\r\n") in
  Alcotest.(check bool) "200" true (Proto_util.starts_with_ci ~prefix:"HTTP/1.1 200" r);
  let r = first_reply (send h flow "GET /nope HTTP/1.1\r\n\r\n") in
  Alcotest.(check bool) "404" true (Proto_util.starts_with_ci ~prefix:"HTTP/1.1 404" r);
  let r = first_reply (send h flow "GET /databases/1/items?session-id=5 HTTP/1.1\r\n\r\n") in
  Alcotest.(check bool) "db route" true (Proto_util.starts_with_ci ~prefix:"HTTP/1.1 200" r)

(* firefox-ipc *)

let test_ipc_actor_lifecycle () =
  let h = boot "firefox-ipc" in
  let flow = connect h in
  let msg t = Ipc.make_msg ~actor:1 ~msg_type:t Bytes.empty in
  ignore (send_bytes h flow (msg 1));
  let replies = send_bytes h flow (Ipc.make_msg ~actor:1 ~msg_type:3 (b "payload")) in
  Alcotest.(check bool) "ack" true (replies <> [])

let test_ipc_use_after_free () =
  let h = boot "firefox-ipc" in
  let flow = connect h in
  ignore (send_bytes h flow (Ipc.make_msg ~actor:1 ~msg_type:1 Bytes.empty));
  ignore (send_bytes h flow (Ipc.make_msg ~actor:1 ~msg_type:2 Bytes.empty));
  expect_crash "use-after-free" (fun () ->
      send_bytes h flow (Ipc.make_msg ~actor:1 ~msg_type:3 (b "boom")))

let test_ipc_multiple_connections () =
  let h = boot "firefox-ipc" in
  let c1 = connect h in
  let c2 = connect h in
  ignore (send_bytes h c1 (Ipc.make_msg ~actor:1 ~msg_type:1 Bytes.empty));
  (* Actors are process-global: the second connection sees actor 1. *)
  let replies = send_bytes h c2 (Ipc.make_msg ~actor:1 ~msg_type:3 (b "x")) in
  Alcotest.(check bool) "cross-connection actor" true (replies <> [])

(* echo *)

let test_echo_behavior () =
  let h = boot "echo" in
  let flow = connect h in
  Alcotest.(check (list string)) "echoes" [ "hi\r\n" ] (send h flow "hi\r\n");
  ignore (send h flow "BOOM\r\n") (* harmless in line mode *);
  ignore (send h flow "MODE raw\r\n");
  expect_crash "assertion" (fun () -> send h flow "BOOM\r\n")



(* mysql-client (client role, §5.4) *)

let client_flow h =
  match Net.outbound_flows h.net with
  | [ fl ] -> fl
  | _ -> Alcotest.fail "expected one outbound flow"

let test_mysql_client_handshake_flow () =
  let h = boot "mysql-client" in
  let fl = client_flow h in
  (* Feed the server greeting: the client answers with a login request. *)
  let replies = send_bytes h fl (Mysql_client.make_handshake ()) in
  Alcotest.(check bool) "login sent" true (replies <> []);
  let login = List.hd replies in
  Alcotest.(check bool) "login mentions root" true
    (String.length login > 8
    && String.exists (fun c -> c = 'r') login);
  (* OK -> the client issues its query. *)
  let replies = send_bytes h fl (Mysql_client.make_ok ()) in
  Alcotest.(check bool) "query sent" true
    (List.exists (fun r -> String.length r > 5 && String.sub r 5 6 = "SELECT") replies)

let test_mysql_client_err_path () =
  let h = boot "mysql-client" in
  let fl = client_flow h in
  ignore (send_bytes h fl (Mysql_client.make_handshake ()));
  let replies = send_bytes h fl (Mysql_client.make_err "denied") in
  Alcotest.(check (list string)) "client gives up quietly" [] replies

let test_mysql_client_oob_read () =
  let h = boot "mysql-client" in
  let fl = client_flow h in
  (* Greeting advertising far more auth data than the scramble buffer. *)
  let evil = Mysql_client.make_handshake ~salt_len:200 () in
  (* Grow the trailing salt so the advertised bytes are actually there. *)
  let evil = Bytes.cat evil (Bytes.make 200 't') in
  (* Fix the frame length for the enlarged payload. *)
  let len = Bytes.length evil - 4 in
  Bytes.set evil 0 (Char.chr (len land 0xff));
  Bytes.set evil 1 (Char.chr ((len lsr 8) land 0xff));
  expect_crash "oob-read" (fun () -> send_bytes h fl evil)

let test_mysql_client_oob_read_asan () =
  let h = boot ~asan:true "mysql-client" in
  let fl = client_flow h in
  let evil = Mysql_client.make_handshake ~salt_len:200 () in
  let evil = Bytes.cat evil (Bytes.make 200 't') in
  let len = Bytes.length evil - 4 in
  Bytes.set evil 0 (Char.chr (len land 0xff));
  Bytes.set evil 1 (Char.chr ((len lsr 8) land 0xff));
  match send_bytes h fl evil with
  | exception Nyx_vm.Guest_heap.Heap_oob _ -> ()
  | _ -> Alcotest.fail "expected ASan violation"

(* lighttpd (§5.5) *)

let test_lighttpd_routes () =
  let h = boot "lighttpd" in
  let flow = connect h in
  let r = first_reply (send h flow "GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n") in
  Alcotest.(check bool) "200" true (Proto_util.starts_with_ci ~prefix:"HTTP/1.1 200" r);
  let r = first_reply (send h flow "GET /nope HTTP/1.1\r\n\r\n") in
  Alcotest.(check bool) "404" true (Proto_util.starts_with_ci ~prefix:"HTTP/1.1 404" r);
  let r = first_reply (send h flow "BREW /coffee HTTP/1.1\r\n\r\n") in
  Alcotest.(check bool) "501" true (Proto_util.starts_with_ci ~prefix:"HTTP/1.1 501" r)

let test_lighttpd_chunked_ok () =
  let h = boot "lighttpd" in
  let flow = connect h in
  let r =
    first_reply
      (send h flow
         "POST /cgi-bin/test HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n")
  in
  Alcotest.(check bool) "accepted" true (Proto_util.starts_with_ci ~prefix:"HTTP/1.1 200" r)

let test_lighttpd_alloc_underflow () =
  let h = boot "lighttpd" in
  let flow = connect h in
  (* A huge chunk header with a small buffered body underflows the
     resize arithmetic. *)
  expect_crash "alloc-underflow" (fun () ->
      send h flow
        "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nffff\r\nshort\r\n")


(* exim DATA handling details *)

let test_exim_rset_resets_transaction () =
  let h = boot "exim" in
  let flow = connect h in
  ignore (send h flow "EHLO c\r\n");
  ignore (send h flow "MAIL FROM:<a@b>\r\n");
  check_int "rset" 250 (code (first_reply (send h flow "RSET\r\n")));
  (* The envelope is gone: RCPT needs MAIL again. *)
  check_int "rcpt after rset" 503 (code (first_reply (send h flow "RCPT TO:<c@d>\r\n")))

let test_exim_data_multiline_single_packet () =
  let h = boot "exim" in
  let flow = connect h in
  exim_reach_data h flow;
  (* Headers and terminator in one packet. *)
  let replies = send h flow "Subject: a\r\nFrom: b\r\n\r\nbody line\r\n.\r\n" in
  check_int "accepted" 250 (code (first_reply replies));
  (* Back in command phase. *)
  check_int "noop works" 250 (code (first_reply (send h flow "NOOP\r\n")))

let test_exim_too_many_recipients () =
  let h = boot "exim" in
  let flow = connect h in
  ignore (send h flow "EHLO c\r\n");
  ignore (send h flow "MAIL FROM:<a@b>\r\n");
  for _ = 1 to 10 do
    check_int "rcpt ok" 250 (code (first_reply (send h flow "RCPT TO:<c@d>\r\n")))
  done;
  check_int "eleventh rejected" 452 (code (first_reply (send h flow "RCPT TO:<c@d>\r\n")))

(* openssl record details *)

let test_openssl_oversized_record_alert () =
  let h = boot "openssl" in
  let flow = connect h in
  (* Record declaring > 2^14 bytes: record_overflow alert. *)
  let bad = Bytes.of_string "\x16\x03\x03\xff\xff" in
  let replies = send_bytes h flow (Bytes.cat bad (Bytes.make 64 'x')) in
  Alcotest.(check bool) "alert sent" true
    (List.exists (fun r -> String.length r > 0 && Char.code r.[0] = 21) replies)

let test_openssl_coalesced_records () =
  let h = boot "openssl" in
  let flow = connect h in
  let hello = Openssl_srv.make_client_hello () in
  let ccs = Bytes.of_string "\x14\x03\x03\x00\x01\x01" in
  (* Both records in one segment: hello answered, CCS accepted. *)
  let replies = send_bytes h flow (Bytes.cat hello ccs) in
  Alcotest.(check bool) "server hello" true
    (List.exists (fun r -> String.length r > 0 && Char.code r.[0] = 22) replies)

(* echo coverage ratchet *)

let test_echo_keyword_ratchet () =
  (* Each additional matching prefix character adds a new edge: the
     coverage gradient the campaign climbs. *)
  let edges_of line =
    let h = boot "echo" in
    let flow = connect h in
    ignore (send h flow "MODE raw\r\n");
    (try ignore (send h flow (line ^ "\r\n")) with Ctx.Crash _ -> ());
    Coverage.edge_count h.ctx.Ctx.cov
  in
  let base = edges_of "xxxx" in
  let b1 = edges_of "Bxxx" in
  let b2 = edges_of "BOxx" in
  let b3 = edges_of "BOOx" in
  Alcotest.(check bool)
    (Printf.sprintf "monotone gradient (%d %d %d %d)" base b1 b2 b3)
    true
    (b1 > base && b2 > b1 && b3 > b2)

(* Proto_util *)

let test_proto_util_lines_tokens () =
  Alcotest.(check string) "crlf stripped" "USER x" (Proto_util.line_of (b "USER x\r\n"));
  Alcotest.(check string) "lf stripped" "abc" (Proto_util.line_of (b "abc\n"));
  Alcotest.(check string) "no terminator kept" "abc" (Proto_util.line_of (b "abc"));
  Alcotest.(check (list string)) "tokens" [ "a"; "bb"; "c" ] (Proto_util.tokens "a  bb\tc");
  Alcotest.(check bool) "ci prefix" true (Proto_util.starts_with_ci ~prefix:"user" "USER x");
  Alcotest.(check bool) "ci prefix too short" false (Proto_util.starts_with_ci ~prefix:"USERX" "USER")

let test_proto_util_read_be () =
  let data = b "\x01\x02\x03\x04" in
  Alcotest.(check (option int)) "u16" (Some 0x0102) (Proto_util.read_be data ~pos:0 ~len:2);
  Alcotest.(check (option int)) "u32" (Some 0x01020304) (Proto_util.read_be data ~pos:0 ~len:4);
  Alcotest.(check (option int)) "oob" None (Proto_util.read_be data ~pos:2 ~len:4);
  Alcotest.(check (option int)) "negative pos" None (Proto_util.read_be data ~pos:(-1) ~len:2)

let test_proto_util_headers () =
  Alcotest.(check (option string)) "value" (Some "text/html")
    (Proto_util.header_value ~name:"content-type" "Content-Type: text/html");
  Alcotest.(check (option string)) "wrong name" None
    (Proto_util.header_value ~name:"Host" "Content-Type: x");
  Alcotest.(check (option int)) "blank line crlf" (Some 6)
    (Proto_util.find_blank_line "ab\r\n\r\ncd");
  Alcotest.(check (option int)) "blank line lf" (Some 4) (Proto_util.find_blank_line "ab\n\ncd");
  Alcotest.(check (option int)) "no blank line" None (Proto_util.find_blank_line "abcd")

let test_proto_util_int_bounded () =
  Alcotest.(check (option int)) "ok" (Some 42) (Proto_util.int_of_string_bounded "42");
  Alcotest.(check (option int)) "over max" None (Proto_util.int_of_string_bounded ~max:10 "42");
  Alcotest.(check (option int)) "negative" None (Proto_util.int_of_string_bounded "-1");
  Alcotest.(check (option int)) "junk" None (Proto_util.int_of_string_bounded "12x")

let test_proto_util_iter_frames () =
  (* 1-byte length-prefixed frames. *)
  let frame_len h = Some (1 + Char.code (Bytes.get h 0)) in
  let collect data =
    let out = ref [] in
    Proto_util.iter_frames ~header_len:1 ~frame_len data (fun f ->
        out := Bytes.to_string f :: !out);
    List.rev !out
  in
  Alcotest.(check (list string)) "two frames" [ "\002ab"; "\001c" ]
    (collect (b "\002ab\001c"));
  Alcotest.(check (list string)) "trailing partial" [ "\002ab"; "\005cd" ]
    (collect (b "\002ab\005cd"));
  Alcotest.(check (list string)) "empty" [] (collect Bytes.empty)

(* Conn_table *)

let mk_table () =
  let clock = Nyx_sim.Clock.create () in
  let vm = Nyx_vm.Vm.create clock in
  let net = Net.create clock in
  let ctx = Ctx.of_vm ~net vm in
  (Conn_table.create ctx ~conn_state_size:8, ctx)

let test_conn_table_lifecycle () =
  let t, ctx = mk_table () in
  check_int "empty" 0 (Conn_table.count t);
  let a = Option.get (Conn_table.insert t ~key:5) in
  let b2 = Option.get (Conn_table.insert t ~key:9) in
  Alcotest.(check bool) "distinct blocks" true (a <> b2);
  Alcotest.(check (option int)) "find" (Some a) (Conn_table.find t ~key:5);
  Alcotest.(check (option int)) "missing" None (Conn_table.find t ~key:6);
  Conn_table.remove t ~key:5;
  Alcotest.(check (option int)) "removed" None (Conn_table.find t ~key:5);
  check_int "count" 1 (Conn_table.count t);
  (* The slot is recycled with zeroed state. *)
  Nyx_vm.Guest_heap.set_i32 ctx.Ctx.heap b2 77;
  let c = Option.get (Conn_table.insert t ~key:11) in
  check_int "recycled block zeroed" 0 (Nyx_vm.Guest_heap.get_i32 ctx.Ctx.heap c)

let test_conn_table_capacity () =
  let t, _ = mk_table () in
  for k = 1 to Conn_table.capacity do
    Alcotest.(check bool) "fits" true (Conn_table.insert t ~key:k <> None)
  done;
  Alcotest.(check (option int)) "full table refuses" None
    (Conn_table.insert t ~key:999)

(* FTP engine details *)

let test_ftp_rnfr_rnto_and_rest () =
  let h = boot "bftpd" in
  let flow = connect h in
  login_ftp h flow;
  check_int "rnto before rnfr" 503 (code (first_reply (send h flow "RNTO b\r\n")));
  check_int "rnfr" 350 (code (first_reply (send h flow "RNFR a\r\n")));
  check_int "rnto" 250 (code (first_reply (send h flow "RNTO b\r\n")));
  check_int "rest ok" 350 (code (first_reply (send h flow "REST 100\r\n")));
  check_int "rest bad" 501 (code (first_reply (send h flow "REST x\r\n")))

let test_ftp_cwd_depth_limit () =
  let h = boot "bftpd" in
  let flow = connect h in
  login_ftp h flow;
  check_int "cdup at root" 550 (code (first_reply (send h flow "CDUP\r\n")));
  for _ = 1 to 7 do
    check_int "descend" 250 (code (first_reply (send h flow "CWD sub\r\n")))
  done;
  check_int "too deep" 550 (code (first_reply (send h flow "CWD sub\r\n")));
  check_int "absolute resets" 250 (code (first_reply (send h flow "CWD /\r\n")));
  check_int "can descend again" 250 (code (first_reply (send h flow "CWD sub\r\n")))

let test_ftp_line_too_long () =
  let h = boot "bftpd" in
  let flow = connect h in
  check_int "oversized line rejected" 500
    (code (first_reply (send h flow (String.make 600 'A' ^ "\r\n"))))

(* Static analysis over everything the registry ships: the spec linter
   on both spec declarations and the program verifier on every target's
   seed programs. Findings must be empty or explicitly allowlisted with
   a reason — an addition to the registry that introduces a lint finding
   fails here until its author either fixes it or writes the reason
   down. *)

(* (code, site, subject-substring, reason) tuples. Currently empty: every
   shipped spec and seed is clean. *)
let lint_allowlist : (string * string * string * string) list = []

let allowlisted subject (d : Nyx_analysis.Diag.t) =
  List.exists
    (fun (code, site, subj, _reason) ->
      code = d.Nyx_analysis.Diag.code
      && site = d.Nyx_analysis.Diag.site
      && (subj = "" || subj = subject))
    lint_allowlist

let test_registry_specs_and_seeds_lint_clean () =
  let ns = Nyx_spec.Net_spec.create () in
  let ipc = Ipc_spec.create () in
  let entries =
    Nyx_analysis.Audit.spec ~subject:"spec raw-network" ns.Nyx_spec.Net_spec.spec
    :: Nyx_analysis.Audit.spec ~subject:"spec firefox-ipc-typed" ipc.Ipc_spec.spec
    :: Nyx_analysis.Audit.program ~subject:"firefox-ipc-typed/seed" (Ipc_spec.seed ipc)
    :: List.concat_map
         (fun entry ->
           let name = entry.Registry.target.Target.info.Target.name in
           List.mapi
             (fun i p ->
               Nyx_analysis.Audit.program ~subject:(Printf.sprintf "%s/seed[%d]" name i) p)
             (Registry.seed_programs entry ns))
         (Registry.all ())
  in
  let residue =
    List.concat_map
      (fun (e : Nyx_analysis.Audit.entry) ->
        List.filter_map
          (fun d ->
            if allowlisted e.Nyx_analysis.Audit.subject d then None
            else
              Some
                (Format.asprintf "%s: %a" e.Nyx_analysis.Audit.subject
                   Nyx_analysis.Diag.pp d))
          e.Nyx_analysis.Audit.diags)
      entries
  in
  Alcotest.(check bool) "registry audits more than the two specs" true
    (List.length entries > 2);
  Alcotest.(check (list string)) "no unallowlisted findings" [] residue

(* Robustness: random garbage must yield a valid status, never an
   unexpected exception. *)

let prop_random_garbage_handled =
  QCheck.Test.make ~name:"targets survive random packets with a valid status" ~count:60
    QCheck.(pair (int_bound 1000) (small_list (string_of_size QCheck.Gen.(int_range 1 64))))
    (fun (seed, packets) ->
      let entry =
        let all = Registry.all () in
        List.nth all (seed mod List.length all)
      in
      let ns = Nyx_spec.Net_spec.create () in
      let exec = Nyx_core.Executor.create ~net_spec:ns entry.Registry.target in
      let program =
        Nyx_spec.Net_spec.seed_of_packets ns (List.map Bytes.of_string packets)
      in
      let r = Nyx_core.Executor.run_full exec program in
      match r.Nyx_core.Report.status with
      | Nyx_core.Report.Pass | Nyx_core.Report.Hang -> true
      | Nyx_core.Report.Crash { kind; _ } ->
        (* Only planted/sanitizer crash kinds are acceptable. *)
        List.mem kind
          [ "stack-exhaustion"; "integer-underflow"; "heap-overflow"; "null-deref";
            "buffer-overflow"; "use-after-free"; "assertion"; "segfault";
            "heap-corruption"; "oom-internal"; "asan-heap-oob" ])

let () =
  Alcotest.run "nyx_targets"
    [
      ( "registry",
        [
          Alcotest.test_case "all boot" `Quick test_all_targets_boot;
          Alcotest.test_case "seeds clean" `Quick test_all_seeds_execute_cleanly;
        ] );
      ( "ftp",
        [
          Alcotest.test_case "banner/auth" `Quick test_ftp_banner_and_auth;
          Alcotest.test_case "pass order" `Quick test_ftp_pass_before_user;
          Alcotest.test_case "stor/retr" `Quick test_ftp_stor_retr_state;
          Alcotest.test_case "unsupported" `Quick test_ftp_unsupported_command;
          Alcotest.test_case "proftpd bug" `Quick test_proftpd_bug_needs_full_state;
          Alcotest.test_case "pure-ftpd quota" `Quick test_pure_ftpd_quota_needs_accumulation;
        ] );
      ( "dnsmasq",
        [
          Alcotest.test_case "valid query" `Quick test_dnsmasq_valid_query;
          Alcotest.test_case "short ignored" `Quick test_dnsmasq_short_packet_ignored;
          Alcotest.test_case "pointer loop" `Quick test_dnsmasq_pointer_loop_crash;
          Alcotest.test_case "backward ok" `Quick test_dnsmasq_backward_pointer_ok;
        ] );
      ( "tinydtls",
        [
          Alcotest.test_case "handshake" `Quick test_tinydtls_handshake;
          Alcotest.test_case "frag underflow" `Quick test_tinydtls_fragment_underflow;
        ] );
      ( "dcmtk",
        [
          Alcotest.test_case "state machine" `Quick test_dcmtk_association_state_machine;
          Alcotest.test_case "asan immediate" `Quick test_dcmtk_oob_with_asan_crashes_immediately;
          Alcotest.test_case "silent good layout" `Quick test_dcmtk_oob_without_asan_is_silent_on_good_layout;
          Alcotest.test_case "unlucky layout" `Quick test_dcmtk_oob_unlucky_layout_crashes;
          Alcotest.test_case "accumulation" `Quick test_dcmtk_corruption_accumulates_across_connections;
        ] );
      ( "exim",
        [
          Alcotest.test_case "order" `Quick test_exim_state_machine_order;
          Alcotest.test_case "accepted" `Quick test_exim_message_accepted;
          Alcotest.test_case "header overflow" `Quick test_exim_header_overflow;
          Alcotest.test_case "early colon safe" `Quick test_exim_long_header_early_colon_is_safe;
        ] );
      ( "live555",
        [
          Alcotest.test_case "rtsp flow" `Quick test_live555_rtsp_flow;
          Alcotest.test_case "null deref" `Quick test_live555_transport_null_deref;
        ] );
      ( "openssh",
        [
          Alcotest.test_case "handshake" `Quick test_openssh_handshake;
          Alcotest.test_case "out of order" `Quick test_openssh_rejects_out_of_order;
          Alcotest.test_case "coalesced frames" `Quick test_openssh_coalesced_frames;
        ] );
      ( "openssl",
        [
          Alcotest.test_case "client hello" `Quick test_openssl_client_hello;
          Alcotest.test_case "ccs alert" `Quick test_openssl_ccs_before_hello_alerts;
        ] );
      ("kamailio", [ Alcotest.test_case "methods" `Quick test_kamailio_methods ]);
      ("daapd", [ Alcotest.test_case "routes" `Quick test_daapd_routes_and_forking ]);
      ( "ipc",
        [
          Alcotest.test_case "lifecycle" `Quick test_ipc_actor_lifecycle;
          Alcotest.test_case "use after free" `Quick test_ipc_use_after_free;
          Alcotest.test_case "multi connection" `Quick test_ipc_multiple_connections;
        ] );
      ("echo", [ Alcotest.test_case "behavior" `Quick test_echo_behavior ]);
      ( "protocol details",
        [
          Alcotest.test_case "exim rset" `Quick test_exim_rset_resets_transaction;
          Alcotest.test_case "exim data multiline" `Quick test_exim_data_multiline_single_packet;
          Alcotest.test_case "exim rcpt limit" `Quick test_exim_too_many_recipients;
          Alcotest.test_case "openssl oversize alert" `Quick test_openssl_oversized_record_alert;
          Alcotest.test_case "openssl coalesced" `Quick test_openssl_coalesced_records;
          Alcotest.test_case "echo ratchet" `Quick test_echo_keyword_ratchet;
        ] );
      ( "mysql-client",
        [
          Alcotest.test_case "handshake flow" `Quick test_mysql_client_handshake_flow;
          Alcotest.test_case "err path" `Quick test_mysql_client_err_path;
          Alcotest.test_case "oob read" `Quick test_mysql_client_oob_read;
          Alcotest.test_case "oob read asan" `Quick test_mysql_client_oob_read_asan;
        ] );
      ( "lighttpd",
        [
          Alcotest.test_case "routes" `Quick test_lighttpd_routes;
          Alcotest.test_case "chunked ok" `Quick test_lighttpd_chunked_ok;
          Alcotest.test_case "alloc underflow" `Quick test_lighttpd_alloc_underflow;
        ] );
      ( "proto_util",
        [
          Alcotest.test_case "lines/tokens" `Quick test_proto_util_lines_tokens;
          Alcotest.test_case "read_be" `Quick test_proto_util_read_be;
          Alcotest.test_case "headers" `Quick test_proto_util_headers;
          Alcotest.test_case "int bounded" `Quick test_proto_util_int_bounded;
          Alcotest.test_case "iter_frames" `Quick test_proto_util_iter_frames;
        ] );
      ( "conn_table",
        [
          Alcotest.test_case "lifecycle" `Quick test_conn_table_lifecycle;
          Alcotest.test_case "capacity" `Quick test_conn_table_capacity;
        ] );
      ( "ftp details",
        [
          Alcotest.test_case "rnfr/rnto/rest" `Quick test_ftp_rnfr_rnto_and_rest;
          Alcotest.test_case "cwd depth" `Quick test_ftp_cwd_depth_limit;
          Alcotest.test_case "long line" `Quick test_ftp_line_too_long;
        ] );
      ( "lint",
        [
          Alcotest.test_case "specs and seeds lint clean" `Quick
            test_registry_specs_and_seeds_lint_clean;
        ] );
      ( "robustness",
        [ QCheck_alcotest.to_alcotest prop_random_garbage_handled ] );
    ]
