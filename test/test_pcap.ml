open Nyx_pcap

let b = Bytes.of_string
let check_int = Alcotest.(check int)

let mk_capture records =
  List.fold_left Capture.add Capture.empty records

let rec_ ?(stream = 0) ?(dir = Capture.To_server) ?(ts = 0) payload =
  { Capture.stream; dir; ts_us = ts; payload = b payload }

(* Capture container *)

let test_capture_roundtrip () =
  let cap =
    mk_capture
      [
        rec_ ~ts:0 "USER x\r\n";
        rec_ ~dir:Capture.To_client ~ts:10 "331 ok\r\n";
        rec_ ~stream:1 ~ts:20 "QUIT\r\n";
      ]
  in
  match Capture.parse (Capture.serialize cap) with
  | Error m -> Alcotest.fail m
  | Ok cap' ->
    check_int "record count" 3 (List.length cap'.Capture.records);
    Alcotest.(check bool) "identical" true (cap = cap')

let test_capture_streams () =
  let cap = mk_capture [ rec_ ~stream:5 "a"; rec_ ~stream:2 "b"; rec_ ~stream:5 "c" ] in
  Alcotest.(check (list int)) "first-seen order" [ 5; 2 ] (Capture.streams cap);
  check_int "stream 5 records" 2 (List.length (Capture.stream_records cap 5))

let test_capture_direction_filter () =
  let cap =
    mk_capture [ rec_ "req"; rec_ ~dir:Capture.To_client "resp"; rec_ "req2" ]
  in
  check_int "to-server only" 2
    (List.length (Capture.stream_records cap ~dir:Capture.To_server 0))

let test_capture_rejects_garbage () =
  Alcotest.(check bool) "bad magic" true
    (Result.is_error (Capture.parse (b "garbage data here")));
  let valid = Capture.serialize (mk_capture [ rec_ "x" ]) in
  Alcotest.(check bool) "truncated" true
    (Result.is_error (Capture.parse (Bytes.sub valid 0 (Bytes.length valid - 1))))

let test_capture_file_io () =
  let path = Filename.temp_file "nyx" ".npcap" in
  let cap = mk_capture [ rec_ "hello" ] in
  Capture.save cap path;
  (match Capture.load path with
  | Ok cap' -> Alcotest.(check bool) "roundtrip via file" true (cap = cap')
  | Error m -> Alcotest.fail m);
  Sys.remove path

(* Dissectors *)

let strs = List.map Bytes.to_string

let test_dissector_raw () =
  Alcotest.(check (list string)) "records pass through" [ "ab"; "cd" ]
    (strs (Dissector.split Dissector.Raw [ b "ab"; b "cd" ]))

let test_dissector_crlf () =
  Alcotest.(check (list string)) "split at CRLF"
    [ "USER x\r\n"; "PASS y\r\n"; "partial" ]
    (strs (Dissector.split Dissector.Crlf [ b "USER x\r\nPASS"; b " y\r\npartial" ]))

let test_dissector_crlf_empty_lines () =
  Alcotest.(check (list string)) "consecutive CRLF" [ "\r\n"; "a\r\n" ]
    (strs (Dissector.split Dissector.Crlf [ b "\r\na\r\n" ]))

let test_dissector_length_prefixed () =
  (* 2-byte BE length prefix. *)
  let packet body =
    let len = String.length body in
    Printf.sprintf "%c%c%s" (Char.chr (len lsr 8)) (Char.chr (len land 0xff)) body
  in
  let stream = packet "AAAA" ^ packet "BB" in
  Alcotest.(check (list string)) "framed"
    [ packet "AAAA"; packet "BB" ]
    (strs (Dissector.split (Dissector.Length_prefixed 2) [ b stream ]));
  (* Trailing bytes that do not form a packet become a final fragment. *)
  let ragged = packet "AA" ^ "\x00\xff" in
  Alcotest.(check (list string)) "ragged tail"
    [ packet "AA"; "\x00\xff" ]
    (strs (Dissector.split (Dissector.Length_prefixed 2) [ b ragged ]))

let test_dissector_of_string () =
  Alcotest.(check bool) "crlf" true (Dissector.of_string "crlf" = Ok Dissector.Crlf);
  Alcotest.(check bool) "len4" true
    (Dissector.of_string "len4" = Ok (Dissector.Length_prefixed 4));
  Alcotest.(check bool) "unknown" true (Result.is_error (Dissector.of_string "nope"))

(* Importer *)

let test_importer_single_stream () =
  let ns = Nyx_spec.Net_spec.create () in
  let cap =
    mk_capture
      [ rec_ "USER x\r\nPASS"; rec_ ~dir:Capture.To_client "331\r\n"; rec_ " y\r\n" ]
  in
  let p = Importer.to_seed ns Dissector.Crlf cap in
  Alcotest.(check bool) "valid program" true
    (Result.is_ok (Nyx_spec.Program.validate p));
  (* connect + 2 dissected packets; server traffic ignored. *)
  check_int "ops" 3 (Array.length p.Nyx_spec.Program.ops)

let test_importer_multi_stream () =
  let ns = Nyx_spec.Net_spec.create () in
  let cap = mk_capture [ rec_ ~stream:0 "a"; rec_ ~stream:1 "b"; rec_ ~stream:0 "c" ] in
  let p = Importer.to_seed ns Dissector.Raw cap in
  let connects =
    Array.to_list p.Nyx_spec.Program.ops
    |> List.filter (fun (op : Nyx_spec.Program.op) ->
           op.Nyx_spec.Program.node = ns.Nyx_spec.Net_spec.connect.Nyx_spec.Spec.nt_id)
  in
  check_int "one connect per stream" 2 (List.length connects)

let test_importer_empty_capture () =
  let ns = Nyx_spec.Net_spec.create () in
  let p = Importer.to_seed ns Dissector.Raw Capture.empty in
  Alcotest.(check bool) "valid" true (Result.is_ok (Nyx_spec.Program.validate p))

let prop_capture_roundtrip =
  QCheck.Test.make ~name:"capture serialize/parse roundtrip" ~count:100
    QCheck.(
      small_list
        (triple (int_bound 3) bool (string_of_size Gen.(int_range 0 32))))
    (fun raw ->
      let cap =
        mk_capture
          (List.mapi
             (fun i (stream, to_server, payload) ->
               {
                 Capture.stream;
                 dir = (if to_server then Capture.To_server else Capture.To_client);
                 ts_us = i;
                 payload = Bytes.of_string payload;
               })
             raw)
      in
      Capture.parse (Capture.serialize cap) = Ok cap)

let prop_crlf_concat_identity =
  QCheck.Test.make ~name:"crlf fragments concatenate back to the stream" ~count:200
    QCheck.(small_list (string_of_size Gen.(int_range 0 16)))
    (fun chunks ->
      let records = List.map Bytes.of_string chunks in
      let whole = String.concat "" chunks in
      let parts = Dissector.split Dissector.Crlf records in
      String.concat "" (List.map Bytes.to_string parts) = whole)

let prop_length_prefixed_concat_identity =
  QCheck.Test.make ~name:"length-prefixed fragments concatenate back" ~count:200
    QCheck.(string_of_size Gen.(int_range 0 64))
    (fun s ->
      let parts = Dissector.split (Dissector.Length_prefixed 2) [ Bytes.of_string s ] in
      String.concat "" (List.map Bytes.to_string parts) = s)

let () =
  Alcotest.run "nyx_pcap"
    [
      ( "capture",
        [
          Alcotest.test_case "roundtrip" `Quick test_capture_roundtrip;
          Alcotest.test_case "streams" `Quick test_capture_streams;
          Alcotest.test_case "direction" `Quick test_capture_direction_filter;
          Alcotest.test_case "garbage" `Quick test_capture_rejects_garbage;
          Alcotest.test_case "file io" `Quick test_capture_file_io;
          QCheck_alcotest.to_alcotest prop_capture_roundtrip;
        ] );
      ( "dissector",
        [
          Alcotest.test_case "raw" `Quick test_dissector_raw;
          Alcotest.test_case "crlf" `Quick test_dissector_crlf;
          Alcotest.test_case "crlf empty lines" `Quick test_dissector_crlf_empty_lines;
          Alcotest.test_case "length prefixed" `Quick test_dissector_length_prefixed;
          Alcotest.test_case "of_string" `Quick test_dissector_of_string;
          QCheck_alcotest.to_alcotest prop_crlf_concat_identity;
          QCheck_alcotest.to_alcotest prop_length_prefixed_concat_identity;
        ] );
      ( "importer",
        [
          Alcotest.test_case "single stream" `Quick test_importer_single_stream;
          Alcotest.test_case "multi stream" `Quick test_importer_multi_stream;
          Alcotest.test_case "empty" `Quick test_importer_empty_capture;
        ] );
    ]
