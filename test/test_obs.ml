(* Observability suite (lib/obs): the determinism contract.

   - With tracing off and profiling off, fixed-seed campaigns reproduce
     the pre-instrumentation goldens (captured at commit 2d045ab, before
     lib/obs existed) — the event sites cost nothing and change nothing.
   - Turning profiling on changes no result field either: accumulation
     is observational.
   - Same-seed runs emit identical trace streams once the wall-clock
     stamps (the one non-deterministic field) are masked.
   - A profile's per-phase virtual times sum to exactly the campaign's
     virtual_ns (self-time accounting + the Other remainder).
   - Trace streams are well-nested: a qcheck property drives random span
     trees through the emitter and replays the stream against a stack. *)

open Nyx_core
module Trace = Nyx_obs.Trace
module Profile = Nyx_obs.Profile

let check_int = Alcotest.(check int)

let echo_entry () = Option.get (Nyx_targets.Registry.find "echo")

let identity_cfg ?(trim = false) ?(policy = Policy.Balanced) ?(budget_ns = 8_000_000_000) () =
  {
    Campaign.default_config with
    Campaign.budget_ns;
    max_execs = 25_000;
    policy;
    trim;
    seed = 7;
  }

(* ------------------------------------------------------------------ *)
(* Trace-off identity: the golden below is the same fixed-seed campaign
   test_hotpath pins, recorded before any lib/obs instrumentation
   existed. It must keep passing with the event sites compiled in. *)

let check_result_fields name (a : Report.campaign_result) (b : Report.campaign_result) =
  check_int (name ^ ": final_edges") a.Report.final_edges b.Report.final_edges;
  check_int (name ^ ": execs") a.Report.execs b.Report.execs;
  check_int (name ^ ": virtual_ns") a.Report.virtual_ns b.Report.virtual_ns;
  check_int (name ^ ": corpus_size") a.Report.corpus_size b.Report.corpus_size;
  Alcotest.(check (list (triple string int int)))
    (name ^ ": crashes")
    (List.map (fun c -> (c.Report.kind, c.Report.found_ns, c.Report.found_exec)) a.Report.crashes)
    (List.map (fun c -> (c.Report.kind, c.Report.found_ns, c.Report.found_exec)) b.Report.crashes);
  check_int
    (name ^ ": timeline samples")
    (List.length (Nyx_sim.Stats.Timeline.samples a.Report.timeline))
    (List.length (Nyx_sim.Stats.Timeline.samples b.Report.timeline))

let test_trace_off_identity () =
  Alcotest.(check bool) "NYX_TRACE is unset in tests" false (Trace.on ());
  let r = Campaign.run (identity_cfg ()) (echo_entry ()) in
  (* Pre-instrumentation golden: balanced/echo, seed 7, 8 virtual s. *)
  check_int "golden: final_edges" 27 r.Report.final_edges;
  check_int "golden: execs" 23151 r.Report.execs;
  check_int "golden: virtual_ns" 8_000_443_636 r.Report.virtual_ns;
  check_int "golden: corpus_size" 68 r.Report.corpus_size;
  Alcotest.(check (list (triple string int int)))
    "golden: crashes"
    [ ("assertion", 20_932_397, 149) ]
    (List.map (fun c -> (c.Report.kind, c.Report.found_ns, c.Report.found_exec)) r.Report.crashes);
  check_int "golden: timeline samples" 88
    (List.length (Nyx_sim.Stats.Timeline.samples r.Report.timeline));
  Alcotest.(check bool) "no profile unless asked" true (r.Report.phase_profile = None)

let test_profile_changes_nothing () =
  let plain = Campaign.run (identity_cfg ()) (echo_entry ()) in
  let profiled = Campaign.run ~profile:true (identity_cfg ()) (echo_entry ()) in
  check_result_fields "profiled == plain" plain profiled

(* ------------------------------------------------------------------ *)
(* Same-seed trace-stream identity, wall stamps masked.                 *)

let mask (e : Trace.event) = { e with Trace.wall_ns = 0 }

let test_trace_stream_deterministic () =
  let cfg = identity_cfg ~budget_ns:2_000_000_000 () in
  let run () = Trace.with_memory_sink (fun () -> Campaign.run cfg (echo_entry ())) in
  let r1, ev1 = run () in
  let r2, ev2 = run () in
  check_result_fields "same-seed results" r1 r2;
  let ev1 = List.map mask ev1 and ev2 = List.map mask ev2 in
  check_int "same event count" (List.length ev1) (List.length ev2);
  Alcotest.(check bool) "streams identical modulo wall time" true (ev1 = ev2);
  (* The stream is non-trivial and records the campaign's shape. *)
  let count name ph =
    List.length (List.filter (fun e -> e.Trace.name = name && e.Trace.ph = ph) ev1)
  in
  check_int "one campaign begin" 1 (count "campaign" `B);
  check_int "one campaign end" 1 (count "campaign" `E);
  check_int "corpus adds == corpus size" r1.Report.corpus_size (count "corpus-add" `I);
  Alcotest.(check bool) "execs traced" true (count "exec" `B > 0);
  Alcotest.(check bool) "snapshot restores traced" true (count "snapshot-restore" `I > 0);
  (* vns stamps are monotone within a domain: the virtual clock only
     advances. *)
  let rec monotone last = function
    | [] -> true
    | e :: tl -> e.Trace.vns >= last && monotone e.Trace.vns tl
  in
  Alcotest.(check bool) "vns monotone" true (monotone 0 ev1)

(* ------------------------------------------------------------------ *)
(* Profile: the sum identity, and trim attribution.                     *)

let test_profile_sums_to_virtual_ns () =
  let r = Campaign.run ~profile:true (identity_cfg ()) (echo_entry ()) in
  match r.Report.phase_profile with
  | None -> Alcotest.fail "profiled campaign must carry a profile"
  | Some snap ->
    check_int "total == campaign virtual_ns" r.Report.virtual_ns snap.Profile.total_virtual_ns;
    check_int "phases sum to total" snap.Profile.total_virtual_ns (Profile.sum_virtual_ns snap);
    List.iter
      (fun e ->
        Alcotest.(check bool)
          (Profile.phase_name e.Profile.phase ^ " self-time >= 0")
          true (e.Profile.virtual_ns >= 0))
      snap.Profile.entries;
    let entry ph = List.find (fun e -> e.Profile.phase = ph) snap.Profile.entries in
    Alcotest.(check bool) "resets happened" true ((entry Profile.Reset).Profile.count > 0);
    Alcotest.(check bool) "suffix execs dominate" true
      ((entry Profile.Suffix_exec).Profile.virtual_ns > snap.Profile.total_virtual_ns / 2)

let test_profile_trim_attribution () =
  let r =
    Campaign.run ~profile:true
      (identity_cfg ~policy:Policy.Aggressive ~trim:true ())
      (echo_entry ())
  in
  match r.Report.phase_profile with
  | None -> Alcotest.fail "profiled campaign must carry a profile"
  | Some snap ->
    check_int "sum identity under trim" snap.Profile.total_virtual_ns
      (Profile.sum_virtual_ns snap);
    let trim = List.find (fun e -> e.Profile.phase = Profile.Trim) snap.Profile.entries in
    Alcotest.(check bool) "trim spans recorded" true (trim.Profile.count > 0);
    Alcotest.(check bool) "trim charged virtual time" true (trim.Profile.virtual_ns > 0)

(* ------------------------------------------------------------------ *)
(* Well-nesting property: random span trees in, stack-replay out.       *)

type tree = Node of int * tree list

let tree_gen =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n = 0 then map (fun i -> Node (i, [])) (int_bound 5)
           else
             map2
               (fun i kids -> Node (i, kids))
               (int_bound 5)
               (list_size (int_bound 4) (self (n / 2)))))

let forest_gen = QCheck.Gen.(list_size (int_bound 5) tree_gen)

let span_name i = Printf.sprintf "span%d" i

let rec emit_tree (Node (i, kids)) =
  Trace.with_span (span_name i) [ ("k", Trace.Int i) ] (fun () ->
      Trace.instant (span_name i) [];
      List.iter emit_tree kids)

let well_nested events =
  let stack = ref [] in
  List.for_all
    (fun (e : Trace.event) ->
      match e.Trace.ph with
      | `B ->
        let ok = e.Trace.depth = List.length !stack in
        stack := e.Trace.name :: !stack;
        ok
      | `E -> (
        match !stack with
        | [] -> false
        | top :: tl ->
          stack := tl;
          top = e.Trace.name && e.Trace.depth = List.length !stack)
      | `I -> e.Trace.depth = List.length !stack)
    events
  && !stack = []

let prop_spans_well_nested =
  QCheck.Test.make ~name:"trace streams are well-nested span forests" ~count:100
    (QCheck.make forest_gen) (fun forest ->
      let (), events = Trace.with_memory_sink (fun () -> List.iter emit_tree forest) in
      well_nested events)

let test_memory_sink_restores () =
  let (), events =
    Trace.with_memory_sink (fun () ->
        Trace.instant "ping" [ ("x", Trace.Int 1); ("s", Trace.Str "a\"b") ])
  in
  check_int "one event" 1 (List.length events);
  Alcotest.(check bool) "sink restored after with_memory_sink" false (Trace.on ());
  let e = List.hd events in
  Alcotest.(check string)
    "json encoding"
    (Printf.sprintf
       "{\"ev\":\"ping\",\"ph\":\"I\",\"dom\":%d,\"depth\":0,\"vt\":0,\"wt\":%d,\"x\":1,\"s\":\"a\\\"b\"}"
       e.Trace.dom e.Trace.wall_ns)
    (Trace.event_json e)

let () =
  Alcotest.run "nyx_obs"
    [
      ( "determinism",
        [
          Alcotest.test_case "trace off: golden identity" `Quick test_trace_off_identity;
          Alcotest.test_case "profile on: results unchanged" `Quick
            test_profile_changes_nothing;
          Alcotest.test_case "same seed: identical trace stream" `Quick
            test_trace_stream_deterministic;
        ] );
      ( "profile",
        [
          Alcotest.test_case "phases sum to virtual_ns" `Quick
            test_profile_sums_to_virtual_ns;
          Alcotest.test_case "trim override attribution" `Quick
            test_profile_trim_attribution;
        ] );
      ( "trace",
        [
          QCheck_alcotest.to_alcotest prop_spans_well_nested;
          Alcotest.test_case "memory sink + json encoding" `Quick
            test_memory_sink_restores;
        ] );
    ]
