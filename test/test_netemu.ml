open Nyx_netemu

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let b = Bytes.of_string

let mk ?backend ?boundaries () =
  let clock = Nyx_sim.Clock.create () in
  (Net.create ?backend ?boundaries clock, clock)

(* A listening TCP server socket plus one accepted connection. *)
let with_tcp_conn ?boundaries () =
  let net, clock = mk ?boundaries () in
  let lfd = Net.socket net Net.Tcp in
  Net.bind net lfd 8080;
  Net.listen net lfd;
  let flow = Option.get (Net.connect_peer net ~port:8080) in
  let cfd =
    match Net.poll net with
    | Some (`Accept fd) -> Net.accept net fd
    | _ -> Alcotest.fail "expected accept readiness"
  in
  (net, clock, lfd, cfd, flow)

let test_lifecycle () =
  let net, _, _, cfd, flow = with_tcp_conn () in
  Net.send_peer net flow (b "hello");
  (match Net.poll net with
  | Some (`Read fd) -> check_int "readable fd" cfd fd
  | _ -> Alcotest.fail "expected read readiness");
  check_str "payload" "hello" (Bytes.to_string (Net.recv net cfd ~max:100));
  Alcotest.(check bool) "quiesced" true (Net.poll net = None)

let test_connection_refused () =
  let net, _ = mk () in
  Alcotest.(check (option int)) "no listener" None (Net.connect_peer net ~port:9);
  (* A UDP-bound port refuses TCP connects. *)
  let ufd = Net.socket net Net.Udp in
  Net.bind net ufd 53;
  Alcotest.(check (option int)) "udp port refuses tcp" None (Net.connect_peer net ~port:53)

let test_packet_boundaries_preserved () =
  let net, _, _, cfd, flow = with_tcp_conn () in
  Net.send_peer net flow (b "AAAA");
  Net.send_peer net flow (b "BBBB");
  (* One recv never crosses a packet boundary, even with room to spare. *)
  check_str "first packet only" "AAAA" (Bytes.to_string (Net.recv net cfd ~max:100));
  check_str "second packet" "BBBB" (Bytes.to_string (Net.recv net cfd ~max:100))

let test_stream_mode_coalesces () =
  let net, _, _, cfd, flow = with_tcp_conn ~boundaries:false () in
  Net.send_peer net flow (b "AAAA");
  Net.send_peer net flow (b "BBBB");
  check_str "stream coalesced" "AAAABBBB" (Bytes.to_string (Net.recv net cfd ~max:100))

let test_partial_reads () =
  let net, _, _, cfd, flow = with_tcp_conn () in
  Net.send_peer net flow (b "ABCDEFGH");
  check_str "first chunk" "ABC" (Bytes.to_string (Net.recv net cfd ~max:3));
  check_str "second chunk" "DEF" (Bytes.to_string (Net.recv net cfd ~max:3));
  check_str "tail" "GH" (Bytes.to_string (Net.recv net cfd ~max:3))

let test_empty_send_dropped () =
  let net, _, _, cfd, flow = with_tcp_conn () in
  Net.send_peer net flow Bytes.empty;
  Alcotest.(check bool) "no readiness from empty send" true (Net.poll net = None);
  Net.send_peer net flow (b "X");
  check_str "later data intact" "X" (Bytes.to_string (Net.recv net cfd ~max:10))

let test_eof_on_peer_close () =
  let net, _, _, cfd, flow = with_tcp_conn () in
  Net.send_peer net flow (b "last");
  Net.close_peer net flow;
  check_str "queued data first" "last" (Bytes.to_string (Net.recv net cfd ~max:100));
  (match Net.poll net with
  | Some (`Read _) -> ()
  | _ -> Alcotest.fail "EOF must be reported as readability");
  check_str "then EOF" "" (Bytes.to_string (Net.recv net cfd ~max:100))

let test_would_block () =
  let net, _, _, cfd, _ = with_tcp_conn () in
  Alcotest.check_raises "recv on empty open socket" (Net.Would_block cfd) (fun () ->
      ignore (Net.recv net cfd ~max:10))

let test_responses_drained () =
  let net, _, _, cfd, flow = with_tcp_conn () in
  ignore (Net.send net cfd (b "r1"));
  ignore (Net.send net cfd (b "r2"));
  Alcotest.(check (list string)) "responses in order" [ "r1"; "r2" ]
    (List.map Bytes.to_string (Net.responses net flow));
  Alcotest.(check (list string)) "drained" [] (List.map Bytes.to_string (Net.responses net flow))

let test_dup_refcount () =
  let net, _, _, cfd, flow = with_tcp_conn () in
  let dup_fd = Net.dup net cfd in
  Net.close net cfd;
  (* The socket lives on through the dup. *)
  Net.send_peer net flow (b "via-dup");
  check_str "readable via dup" "via-dup" (Bytes.to_string (Net.recv net dup_fd ~max:100));
  Net.close net dup_fd;
  Alcotest.check_raises "socket gone after last close"
    (Invalid_argument "Net: unknown flow 1") (fun () ->
      Net.send_peer net flow (b "x"))

let test_fork_shares_fds () =
  let net, _, _, cfd, flow = with_tcp_conn () in
  check_int "two processes" 2 (Net.fork net);
  (* Parent closes: the child's inherited reference keeps both the fd
     number and the socket alive. *)
  Net.close net cfd;
  Net.send_peer net flow (b "to-child");
  (match Net.poll net with
  | Some (`Read fd) ->
    check_int "same fd visible to child" cfd fd;
    Alcotest.(check string) "data delivered" "to-child"
      (Bytes.to_string (Net.recv net fd ~max:100))
  | _ -> Alcotest.fail "expected readability in child");
  (* The child's close is the last reference: now the socket dies. *)
  Net.close net cfd;
  Alcotest.check_raises "socket gone" (Invalid_argument "Net: unknown flow 1") (fun () ->
      Net.send_peer net flow (b "x"))

let test_udp_flows () =
  let net, _ = mk () in
  let ufd = Net.socket net Net.Udp in
  Net.bind net ufd 53;
  let fl1 = Option.get (Net.udp_send_peer net ~port:53 (b "query1")) in
  let fl2 = Option.get (Net.udp_send_peer net ~port:53 (b "query2")) in
  Alcotest.(check bool) "distinct flows" true (fl1 <> fl2);
  let d1, from1 = Net.recvfrom net ufd ~max:100 in
  check_str "first datagram" "query1" (Bytes.to_string d1);
  check_int "from first flow" fl1 from1;
  (* Reply goes to the most recent sender by default. *)
  ignore (Net.send net ufd (b "resp1"));
  Alcotest.(check (list string)) "reply routed" [ "resp1" ]
    (List.map Bytes.to_string (Net.responses net fl1));
  let _, from2 = Net.recvfrom net ufd ~max:100 in
  check_int "second flow" fl2 from2;
  ignore (Net.sendto net ufd fl2 (b "resp2"));
  Alcotest.(check (list string)) "sendto routed" [ "resp2" ]
    (List.map Bytes.to_string (Net.responses net fl2))

let test_udp_datagram_truncation () =
  let net, _ = mk () in
  let ufd = Net.socket net Net.Udp in
  Net.bind net ufd 53;
  ignore (Net.udp_send_peer net ~port:53 (b "0123456789"));
  let d, _ = Net.recvfrom net ufd ~max:4 in
  check_str "truncated" "0123" (Bytes.to_string d);
  (* The tail is gone, as UDP discards it. *)
  Alcotest.(check bool) "tail discarded" true (Net.poll net = None)

let test_listening_ports () =
  let net, _ = mk () in
  let t = Net.socket net Net.Tcp in
  Net.bind net t 21;
  Net.listen net t;
  let u = Net.socket net Net.Udp in
  Net.bind net u 53;
  Alcotest.(check (list (pair int bool))) "surface"
    [ (21, true); (53, false) ]
    (List.map (fun (p, proto) -> (p, proto = Net.Tcp)) (Net.listening_ports net))

let test_costs_differ_by_backend () =
  let run backend =
    let net, clock = mk ~backend () in
    let lfd = Net.socket net Net.Tcp in
    Net.bind net lfd 8080;
    Net.listen net lfd;
    let fl = Option.get (Net.connect_peer net ~port:8080) in
    Net.send_peer net fl (b "data");
    Nyx_sim.Clock.now_ns clock
  in
  let emulated = run Net.Emulated and real = run Net.Real in
  Alcotest.(check bool)
    (Printf.sprintf "real (%d) >> emulated (%d)" real emulated)
    true
    (real > 20 * emulated)

let test_snapshot_roundtrip () =
  let clock = Nyx_sim.Clock.create () in
  let net = Net.create clock in
  let aux = Nyx_snapshot.Aux_state.create () in
  Net.register_aux net aux;
  let lfd = Net.socket net Net.Tcp in
  Net.bind net lfd 8080;
  Net.listen net lfd;
  let cap = Nyx_snapshot.Aux_state.capture aux clock in
  (* Mutate heavily: connect, transfer, close the listener. *)
  let fl = Option.get (Net.connect_peer net ~port:8080) in
  (match Net.poll net with
  | Some (`Accept fd) ->
    let cfd = Net.accept net fd in
    Net.send_peer net fl (b "x");
    ignore (Net.recv net cfd ~max:10);
    Net.close net cfd
  | _ -> Alcotest.fail "expected accept");
  Net.close net lfd;
  Alcotest.(check (list (pair int bool))) "listener gone" []
    (List.map (fun (p, _) -> (p, true)) (Net.listening_ports net));
  (* Restore: pristine listening state, flow gone. *)
  Nyx_snapshot.Aux_state.restore aux clock cap;
  check_int "one socket again" 1 (Net.open_socket_count net);
  Alcotest.(check bool) "listening again" true (Net.listening_ports net = [ (8080, Net.Tcp) ]);
  Alcotest.(check bool) "can connect again" true (Net.connect_peer net ~port:8080 <> None)


(* Extended hook surface *)

let test_shutdown_write () =
  let net, _, _, cfd, _ = with_tcp_conn () in
  Net.shutdown net cfd `Write;
  Alcotest.check_raises "EPIPE after write shutdown"
    (Invalid_argument "Net.send: socket shut down for writing (EPIPE)") (fun () ->
      ignore (Net.send net cfd (b "x")))

let test_shutdown_read () =
  let net, _, _, cfd, flow = with_tcp_conn () in
  Net.send_peer net flow (b "queued");
  Net.shutdown net cfd `Read;
  (* Queued input is discarded and the next read is EOF. *)
  check_str "eof" "" (Bytes.to_string (Net.recv net cfd ~max:10));
  (* Writing still works after a read-side shutdown. *)
  ignore (Net.send net cfd (b "still-writable"))

let test_peek_does_not_consume () =
  let net, _, _, cfd, flow = with_tcp_conn () in
  Net.send_peer net flow (b "hello");
  check_str "peek sees data" "hel" (Bytes.to_string (Net.peek net cfd ~max:3));
  check_str "peek again" "hello" (Bytes.to_string (Net.peek net cfd ~max:10));
  check_str "recv still gets it" "hello" (Bytes.to_string (Net.recv net cfd ~max:10));
  Alcotest.check_raises "now empty" (Net.Would_block cfd) (fun () ->
      ignore (Net.peek net cfd ~max:4))


let test_connect_out () =
  let net, _ = mk () in
  let fd = Net.socket net Net.Tcp in
  let flow = Net.connect_out net fd ~port:3306 in
  Alcotest.(check (list int)) "outbound flow visible" [ flow ] (Net.outbound_flows net);
  Alcotest.(check (option int)) "peer known" (Some flow) (Net.getpeername net fd);
  (* The fuzzer (playing the server) injects a packet; the client reads it. *)
  Net.send_peer net flow (b "greeting");
  check_str "client receives" "greeting" (Bytes.to_string (Net.recv net fd ~max:100));
  (* The client replies; the fuzzer drains it. *)
  ignore (Net.send net fd (b "login"));
  Alcotest.(check (list string)) "reply visible to fuzzer" [ "login" ]
    (List.map Bytes.to_string (Net.responses net flow));
  Alcotest.check_raises "double connect"
    (Invalid_argument "Net.connect_out: already connected") (fun () ->
      ignore (Net.connect_out net fd ~port:3307))

let test_names_and_options () =
  let net, _, lfd, cfd, flow = with_tcp_conn () in
  check_int "listener bound port" 8080 (Net.getsockname net lfd);
  Alcotest.(check (option int)) "conn peer flow" (Some flow) (Net.getpeername net cfd);
  Alcotest.(check (option int)) "listener has no peer" None (Net.getpeername net lfd);
  check_int "option default" 0 (Net.getsockopt net lfd "SO_REUSEADDR");
  Net.setsockopt net lfd "SO_REUSEADDR" 1;
  Net.setsockopt net lfd "TCP_NODELAY" 1;
  Net.setsockopt net lfd "SO_REUSEADDR" 0;
  check_int "last write wins" 0 (Net.getsockopt net lfd "SO_REUSEADDR");
  check_int "other option kept" 1 (Net.getsockopt net lfd "TCP_NODELAY")

(* domain-safe: qcheck property closure, run on a single domain *)
let prop_boundary_sequence =
  QCheck.Test.make ~name:"packet sequence is received intact and in order" ~count:100
    QCheck.(small_list (string_of_size QCheck.Gen.(int_range 1 32)))
    (fun packets ->
      let net, _, _, cfd, flow = with_tcp_conn () in
      List.iter (fun p -> Net.send_peer net flow (Bytes.of_string p)) packets;
      let received = ref [] in
      (try
         while true do
           received := Bytes.to_string (Net.recv net cfd ~max:64) :: !received
         done
       with Net.Would_block _ -> ());
      List.rev !received = packets)

let () =
  Alcotest.run "nyx_netemu"
    [
      ( "tcp",
        [
          Alcotest.test_case "lifecycle" `Quick test_lifecycle;
          Alcotest.test_case "refused" `Quick test_connection_refused;
          Alcotest.test_case "boundaries" `Quick test_packet_boundaries_preserved;
          Alcotest.test_case "stream mode" `Quick test_stream_mode_coalesces;
          Alcotest.test_case "partial reads" `Quick test_partial_reads;
          Alcotest.test_case "empty send" `Quick test_empty_send_dropped;
          Alcotest.test_case "eof" `Quick test_eof_on_peer_close;
          Alcotest.test_case "would block" `Quick test_would_block;
          Alcotest.test_case "responses" `Quick test_responses_drained;
          QCheck_alcotest.to_alcotest prop_boundary_sequence;
        ] );
      ( "fd table",
        [
          Alcotest.test_case "dup refcount" `Quick test_dup_refcount;
          Alcotest.test_case "fork shares" `Quick test_fork_shares_fds;
        ] );
      ( "udp",
        [
          Alcotest.test_case "flows" `Quick test_udp_flows;
          Alcotest.test_case "truncation" `Quick test_udp_datagram_truncation;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "shutdown write" `Quick test_shutdown_write;
          Alcotest.test_case "shutdown read" `Quick test_shutdown_read;
          Alcotest.test_case "peek" `Quick test_peek_does_not_consume;
          Alcotest.test_case "names and options" `Quick test_names_and_options;
          Alcotest.test_case "connect out" `Quick test_connect_out;
        ] );
      ( "misc",
        [
          Alcotest.test_case "listening ports" `Quick test_listening_ports;
          Alcotest.test_case "backend costs" `Quick test_costs_differ_by_backend;
          Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
        ] );
    ]
