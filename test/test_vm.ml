open Nyx_vm

let check_int = Alcotest.(check int)
let check_bytes = Alcotest.(check string)
let b = Bytes.of_string

let mk_mem ?(pages = 64) () = Memory.create ~num_pages:pages

(* Page geometry *)

let test_page_geometry () =
  check_int "size" 512 Page.size;
  check_int "number" 2 (Page.number (2 * Page.size));
  check_int "offset" 5 (Page.offset ((2 * Page.size) + 5));
  check_int "zero page len" Page.size (Bytes.length (Page.zero ()))

(* Dirty log *)

let test_dirty_mark_once () =
  let d = Dirty_log.create ~num_pages:16 in
  Alcotest.(check bool) "first mark" true (Dirty_log.mark d 3);
  Alcotest.(check bool) "second mark absorbed" false (Dirty_log.mark d 3);
  check_int "count" 1 (Dirty_log.count d);
  Alcotest.(check bool) "is_dirty" true (Dirty_log.is_dirty d 3);
  Alcotest.(check bool) "clean page" false (Dirty_log.is_dirty d 4)

let test_dirty_iter_agree () =
  let d = Dirty_log.create ~num_pages:32 in
  List.iter (fun p -> ignore (Dirty_log.mark d p)) [ 5; 1; 9; 1; 30 ];
  let clock = Nyx_sim.Clock.create () in
  let via_stack = ref [] and via_bitmap = ref [] in
  Dirty_log.iter_stack d clock (fun p -> via_stack := p :: !via_stack);
  Dirty_log.iter_bitmap d clock (fun p -> via_bitmap := p :: !via_bitmap);
  let sort = List.sort compare in
  Alcotest.(check (list int)) "same set" (sort !via_stack) (sort !via_bitmap);
  Alcotest.(check (list int)) "set is marked pages" [ 1; 5; 9; 30 ] (sort !via_stack)

let test_dirty_costs () =
  let d = Dirty_log.create ~num_pages:1000 in
  ignore (Dirty_log.mark d 1);
  ignore (Dirty_log.mark d 2);
  let c1 = Nyx_sim.Clock.create () in
  Dirty_log.iter_stack d c1 ignore;
  check_int "stack cost scales with dirty count"
    (2 * Nyx_sim.Cost.dirty_stack_entry)
    (Nyx_sim.Clock.now_ns c1);
  let c2 = Nyx_sim.Clock.create () in
  Dirty_log.iter_bitmap d c2 ignore;
  check_int "bitmap cost scales with VM size"
    (1000 * Nyx_sim.Cost.bitmap_scan_per_page)
    (Nyx_sim.Clock.now_ns c2)

let test_dirty_clear () =
  let d = Dirty_log.create ~num_pages:16 in
  ignore (Dirty_log.mark d 7);
  Dirty_log.clear d;
  check_int "count zero" 0 (Dirty_log.count d);
  Alcotest.(check bool) "bitmap cleared" false (Dirty_log.is_dirty d 7);
  Alcotest.(check bool) "can re-mark" true (Dirty_log.mark d 7)

let test_dirty_stack_growth () =
  let d = Dirty_log.create ~num_pages:500 in
  for p = 0 to 499 do
    ignore (Dirty_log.mark d p)
  done;
  check_int "all tracked" 500 (Dirty_log.count d)

(* Memory *)

let test_memory_rw_roundtrip () =
  let m = mk_mem () in
  Memory.write m 100 (b "hello");
  check_bytes "read back" "hello" (Bytes.to_string (Memory.read m 100 5))

let test_memory_zero_default () =
  let m = mk_mem () in
  check_bytes "zeros" "\000\000\000" (Bytes.to_string (Memory.read m 0 3))

let test_memory_cross_page () =
  let m = mk_mem () in
  let addr = Page.size - 2 in
  Memory.write m addr (b "abcd");
  check_bytes "spans boundary" "abcd" (Bytes.to_string (Memory.read m addr 4));
  check_int "both pages dirty" 2 (Dirty_log.count (Memory.dirty m))

let test_memory_fault () =
  let m = mk_mem ~pages:2 () in
  Alcotest.check_raises "oob" (Memory.Fault { addr = 2 * Page.size; size = 1 })
    (fun () -> ignore (Memory.read m (2 * Page.size) 1));
  Alcotest.check_raises "negative" (Memory.Fault { addr = -1; size = 1 }) (fun () ->
      Memory.write m (-1) (b "x"))

let test_memory_ints () =
  let m = mk_mem () in
  Memory.write_u8 m 0 255;
  check_int "u8" 255 (Memory.read_u8 m 0);
  Memory.write_u16 m 2 0xBEEF;
  check_int "u16" 0xBEEF (Memory.read_u16 m 2);
  Memory.write_i32 m 8 (-123456);
  check_int "i32 negative" (-123456) (Memory.read_i32 m 8);
  Memory.write_i32 m 12 0x7FFFFFFF;
  check_int "i32 max" 0x7FFFFFFF (Memory.read_i32 m 12);
  Memory.write_i64 m 16 (-987654321012345);
  check_int "i64" (-987654321012345) (Memory.read_i64 m 16)

let test_memory_ints_cross_page () =
  let m = mk_mem () in
  (* Every scalar access straddles a page boundary: the generic fallback
     path, which must agree with the single-page fast path. *)
  Memory.write_u16 m (Page.size - 1) 0xABCD;
  check_int "u16 straddle" 0xABCD (Memory.read_u16 m (Page.size - 1));
  Memory.write_i32 m ((2 * Page.size) - 2) (-77777);
  check_int "i32 straddle" (-77777) (Memory.read_i32 m ((2 * Page.size) - 2));
  Memory.write_i64 m ((3 * Page.size) - 5) 0x1122334455667788;
  check_int "i64 straddle" 0x1122334455667788 (Memory.read_i64 m ((3 * Page.size) - 5));
  check_int "straddling writes dirty both sides" 4 (Dirty_log.count (Memory.dirty m))

let test_memory_scalar_fast_path () =
  let m = mk_mem () in
  Memory.write_i32 m 100 42;
  check_int "fast write dirties one page" 1 (Dirty_log.count (Memory.dirty m));
  check_int "fast read" 42 (Memory.read_i32 m 100);
  check_int "unmaterialized reads as zero" 0 (Memory.read_i64 m (10 * Page.size));
  check_int "scalar reads materialize nothing" 1 (Memory.materialized_count m);
  Alcotest.check_raises "fast path still faults"
    (Memory.Fault { addr = (64 * Page.size) - 2; size = 4 }) (fun () ->
      ignore (Memory.read_i32 m ((64 * Page.size) - 2)))

(* domain-safe: qcheck property closure, run on a single domain *)
let prop_i32_fast_slow_agree =
  QCheck.Test.make ~name:"i32 scalar path = generic byte path" ~count:500
    QCheck.(pair (int_bound ((64 * 512) - 4)) int)
    (fun (addr, v) ->
      let m1 = Memory.create ~num_pages:64 in
      let m2 = Memory.create ~num_pages:64 in
      Memory.write_i32 m1 addr v;
      let bs = Bytes.create 4 in
      for i = 0 to 3 do
        Bytes.set bs i (Char.chr ((v lsr (8 * i)) land 0xff))
      done;
      Memory.write m2 addr bs;
      Memory.read_i32 m1 addr = Memory.read_i32 m2 addr
      && Bytes.equal (Memory.read m1 addr 4) (Memory.read m2 addr 4)
      && Dirty_log.to_list (Memory.dirty m1) = Dirty_log.to_list (Memory.dirty m2))

let test_memory_snapshot_interface () =
  let m = mk_mem () in
  Memory.write m 0 (b "xyz");
  Memory.clear_dirty m;
  (match Memory.page_content m 0 with
  | Some p -> check_bytes "content" "xyz" (Bytes.to_string (Bytes.sub p 0 3))
  | None -> Alcotest.fail "expected materialized page");
  Alcotest.(check bool) "unmaterialized" true (Memory.page_content m 5 = None);
  let fresh = Page.zero () in
  Bytes.blit_string "new" 0 fresh 0 3;
  Memory.set_page m 0 fresh;
  check_bytes "set_page applied" "new" (Bytes.to_string (Memory.read m 0 3));
  check_int "set_page not dirty" 0 (Dirty_log.count (Memory.dirty m));
  Memory.drop_page m 0;
  check_bytes "dropped reads zero" "\000\000\000" (Bytes.to_string (Memory.read m 0 3))

(* Guest heap *)

let mk_heap () =
  let clock = Nyx_sim.Clock.create () in
  let m = Memory.create ~num_pages:64 in
  (Guest_heap.init m clock, clock)

let test_heap_alloc_distinct () =
  let h, _ = mk_heap () in
  let a = Guest_heap.alloc h 32 in
  let b2 = Guest_heap.alloc h 32 in
  Alcotest.(check bool) "regions disjoint" true (b2 >= a + 32);
  check_int "size recorded" 32 (Guest_heap.size_of h a)

let test_heap_accessors () =
  let h, _ = mk_heap () in
  let a = Guest_heap.alloc h 64 in
  Guest_heap.set_i32 h a 42;
  check_int "i32" 42 (Guest_heap.get_i32 h a);
  Guest_heap.set_bytes h (a + 8) (b "data");
  check_bytes "bytes" "data" (Bytes.to_string (Guest_heap.get_bytes h (a + 8) 4))

let test_heap_charges_clock () =
  let h, clock = mk_heap () in
  let t0 = Nyx_sim.Clock.now_ns clock in
  let a = Guest_heap.alloc h 16 in
  Guest_heap.set_i64 h a 7;
  Alcotest.(check bool) "cost charged" true (Nyx_sim.Clock.now_ns clock > t0)

let test_heap_oob_checked () =
  let h, _ = mk_heap () in
  let base = Guest_heap.alloc h 16 in
  ignore (Guest_heap.checked_get h ~base ~off:0 ~len:16);
  Alcotest.check_raises "asan catches overflow"
    (Guest_heap.Heap_oob { base; off = 10; len = 8 }) (fun () ->
      ignore (Guest_heap.checked_get h ~base ~off:10 ~len:8));
  Alcotest.check_raises "asan catches write overflow"
    (Guest_heap.Heap_oob { base; off = 15; len = 2 }) (fun () ->
      Guest_heap.checked_set h ~base ~off:15 (b "ab"))

let test_heap_oom () =
  let clock = Nyx_sim.Clock.create () in
  let m = Memory.create ~num_pages:1 in
  let h = Guest_heap.init m clock in
  Alcotest.check_raises "oom" Guest_heap.Out_of_memory (fun () ->
      ignore (Guest_heap.alloc h (2 * Page.size)))

let test_heap_brk_in_memory () =
  (* The break pointer itself must live in guest memory so snapshots roll
     allocations back. *)
  let h, _ = mk_heap () in
  let before = Memory.read_i64 (Guest_heap.memory h) 0 in
  ignore (Guest_heap.alloc h 100);
  let after = Memory.read_i64 (Guest_heap.memory h) 0 in
  Alcotest.(check bool) "brk advanced in guest memory" true (after > before)

(* Device state *)

let test_device_rw () =
  let d = Device_state.create ~size:128 in
  Device_state.write d 10 (b "dev");
  check_bytes "read" "dev" (Bytes.to_string (Device_state.read d 10 3));
  Alcotest.check_raises "oob" (Invalid_argument "Device_state.write: out of range")
    (fun () -> Device_state.write d 126 (b "xyz"))

let test_device_restore_costs () =
  let d = Device_state.create ~size:64 in
  let saved = Device_state.capture d in
  Device_state.write d 0 (b "scribble");
  let c = Nyx_sim.Clock.create () in
  Device_state.restore_fast d c saved;
  check_int "fast reset cost" Nyx_sim.Cost.device_fast_reset (Nyx_sim.Clock.now_ns c);
  check_bytes "restored" "\000\000\000" (Bytes.to_string (Device_state.read d 0 3));
  Device_state.write d 0 (b "again");
  let c2 = Nyx_sim.Clock.create () in
  Device_state.restore_serialized d c2 saved;
  check_int "serialized reset cost" Nyx_sim.Cost.device_serialize_reset
    (Nyx_sim.Clock.now_ns c2)

(* Disk *)

let mk_disk () =
  let clock = Nyx_sim.Clock.create () in
  (Disk.create ~sector_size:8 ~sectors:16 clock, clock)

let sector s = Bytes.of_string s

let test_disk_base_and_overlay () =
  let d, _ = mk_disk () in
  Disk.write_base d 0 (sector "base0000");
  check_bytes "base read" "base0000" (Bytes.to_string (Disk.read_sector d 0));
  Disk.write_sector d 0 (sector "over0000");
  check_bytes "overlay wins" "over0000" (Bytes.to_string (Disk.read_sector d 0));
  check_int "dirty sectors" 1 (Disk.dirty_sectors d);
  Disk.discard_overlays d;
  check_bytes "root restore" "base0000" (Bytes.to_string (Disk.read_sector d 0))

let test_disk_incremental_layers () =
  let d, _ = mk_disk () in
  Disk.write_base d 1 (sector "basebase");
  Disk.write_sector d 1 (sector "prefix00");
  Disk.freeze_incremental d;
  check_int "fresh overlay" 0 (Disk.dirty_sectors d);
  Disk.write_sector d 1 (sector "suffix00");
  check_bytes "suffix visible" "suffix00" (Bytes.to_string (Disk.read_sector d 1));
  Disk.reset_to_incremental d;
  check_bytes "incremental layer" "prefix00" (Bytes.to_string (Disk.read_sector d 1));
  Disk.drop_incremental d;
  check_bytes "back to base" "basebase" (Bytes.to_string (Disk.read_sector d 1))

let test_disk_double_freeze_merges () =
  let d, _ = mk_disk () in
  Disk.write_sector d 2 (sector "first000");
  Disk.freeze_incremental d;
  Disk.write_sector d 3 (sector "second00");
  Disk.freeze_incremental d;
  Disk.reset_to_incremental d;
  check_bytes "older layer kept" "first000" (Bytes.to_string (Disk.read_sector d 2));
  check_bytes "newer merged" "second00" (Bytes.to_string (Disk.read_sector d 3))

let test_disk_charges () =
  let d, clock = mk_disk () in
  let t0 = Nyx_sim.Clock.now_ns clock in
  ignore (Disk.read_sector d 0);
  Disk.write_sector d 0 (sector "xxxxxxxx");
  check_int "two sector ops" (2 * Nyx_sim.Cost.disk_sector_op)
    (Nyx_sim.Clock.now_ns clock - t0)

(* Vm aggregate *)

let test_vm_create () =
  let clock = Nyx_sim.Clock.create () in
  let vm = Vm.create clock in
  (* Boot initializes the heap break pointer: exactly one dirty page. *)
  check_int "only the brk page dirty at boot" 1 (Vm.dirty_pages vm);
  Memory.clear_dirty vm.Vm.mem;
  ignore (Guest_heap.alloc vm.Vm.heap 10);
  Alcotest.(check bool) "allocation dirties" true (Vm.dirty_pages vm > 0)

let test_vm_configs () =
  check_int "512MB-class page count" 131_072 Vm.small_config.Vm.mem_pages;
  check_int "4GB-class page count" 1_048_576 Vm.large_config.Vm.mem_pages

(* Properties *)

let prop_memory_write_read =
  QCheck.Test.make ~name:"memory write/read roundtrip" ~count:300
    QCheck.(pair (int_bound ((64 * 512) - 64)) (string_of_size Gen.(int_range 1 64)))
    (fun (addr, s) ->
      let m = Memory.create ~num_pages:64 in
      Memory.write m addr (Bytes.of_string s);
      Bytes.to_string (Memory.read m addr (String.length s)) = s)

let prop_dirty_tracks_written_pages =
  QCheck.Test.make ~name:"dirty set = touched pages" ~count:200
    QCheck.(small_list (pair (int_bound ((32 * 512) - 16)) (string_of_size Gen.(int_range 1 16))))
    (fun writes ->
      let m = Memory.create ~num_pages:32 in
      List.iter (fun (addr, s) -> Memory.write m addr (Bytes.of_string s)) writes;
      let expected =
        List.concat_map
          (fun (addr, s) ->
            let first = Page.number addr
            and last = Page.number (addr + String.length s - 1) in
            List.init (last - first + 1) (fun i -> first + i))
          writes
        |> List.sort_uniq compare
      in
      List.sort compare (Dirty_log.to_list (Memory.dirty m)) = expected)

let prop_heap_allocations_disjoint =
  QCheck.Test.make ~name:"heap allocations never overlap" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 20) (int_range 1 100))
    (fun sizes ->
      let clock = Nyx_sim.Clock.create () in
      let m = Memory.create ~num_pages:1024 in
      let h = Guest_heap.init m clock in
      let regions = List.map (fun n -> (Guest_heap.alloc h n, n)) sizes in
      let rec disjoint = function
        | [] -> true
        | (a, n) :: rest ->
          List.for_all (fun (a', n') -> a + n <= a' || a' + n' <= a) rest
          && disjoint rest
      in
      disjoint regions)

let () =
  Alcotest.run "nyx_vm"
    [
      ("page", [ Alcotest.test_case "geometry" `Quick test_page_geometry ]);
      ( "dirty_log",
        [
          Alcotest.test_case "mark once" `Quick test_dirty_mark_once;
          Alcotest.test_case "iter agree" `Quick test_dirty_iter_agree;
          Alcotest.test_case "costs" `Quick test_dirty_costs;
          Alcotest.test_case "clear" `Quick test_dirty_clear;
          Alcotest.test_case "stack growth" `Quick test_dirty_stack_growth;
        ] );
      ( "memory",
        [
          Alcotest.test_case "roundtrip" `Quick test_memory_rw_roundtrip;
          Alcotest.test_case "zero default" `Quick test_memory_zero_default;
          Alcotest.test_case "cross page" `Quick test_memory_cross_page;
          Alcotest.test_case "fault" `Quick test_memory_fault;
          Alcotest.test_case "fixed-width ints" `Quick test_memory_ints;
          Alcotest.test_case "ints across pages" `Quick test_memory_ints_cross_page;
          Alcotest.test_case "scalar fast path" `Quick test_memory_scalar_fast_path;
          Alcotest.test_case "snapshot interface" `Quick test_memory_snapshot_interface;
          QCheck_alcotest.to_alcotest prop_memory_write_read;
          QCheck_alcotest.to_alcotest prop_i32_fast_slow_agree;
          QCheck_alcotest.to_alcotest prop_dirty_tracks_written_pages;
        ] );
      ( "guest_heap",
        [
          Alcotest.test_case "alloc distinct" `Quick test_heap_alloc_distinct;
          Alcotest.test_case "accessors" `Quick test_heap_accessors;
          Alcotest.test_case "charges clock" `Quick test_heap_charges_clock;
          Alcotest.test_case "asan oob" `Quick test_heap_oob_checked;
          Alcotest.test_case "oom" `Quick test_heap_oom;
          Alcotest.test_case "brk in guest memory" `Quick test_heap_brk_in_memory;
          QCheck_alcotest.to_alcotest prop_heap_allocations_disjoint;
        ] );
      ( "device",
        [
          Alcotest.test_case "rw" `Quick test_device_rw;
          Alcotest.test_case "restore costs" `Quick test_device_restore_costs;
        ] );
      ( "disk",
        [
          Alcotest.test_case "base/overlay" `Quick test_disk_base_and_overlay;
          Alcotest.test_case "incremental layers" `Quick test_disk_incremental_layers;
          Alcotest.test_case "double freeze" `Quick test_disk_double_freeze_merges;
          Alcotest.test_case "charges" `Quick test_disk_charges;
        ] );
      ( "vm",
        [
          Alcotest.test_case "create" `Quick test_vm_create;
          Alcotest.test_case "configs" `Quick test_vm_configs;
        ] );
    ]
