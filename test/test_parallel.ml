(* nyx_parallel: pool semantics, and the determinism contract that lets
   fleets and the bench matrix fan out across domains. *)

open Nyx_core

let check_int = Alcotest.(check int)

(* Pool basics *)

let test_map_preserves_order () =
  let input = Array.init 100 Fun.id in
  let expected = Array.map (fun x -> (x * x) + 1) input in
  List.iter
    (fun domains ->
      let got = Nyx_parallel.Pool.map ~domains (fun x -> (x * x) + 1) input in
      Alcotest.(check (array int)) (Printf.sprintf "domains=%d" domains) expected got)
    [ 1; 2; 4; 8 ]

let test_map_list_preserves_order () =
  let got =
    Nyx_parallel.Pool.map_list ~domains:4 (fun x -> 2 * x) (List.init 33 Fun.id)
  in
  Alcotest.(check (list int)) "ordered" (List.init 33 (fun i -> 2 * i)) got

let test_map_edge_sizes () =
  Alcotest.(check (array int)) "empty" [||] (Nyx_parallel.Pool.map ~domains:4 succ [||]);
  Alcotest.(check (array int)) "singleton" [| 8 |]
    (Nyx_parallel.Pool.map ~domains:4 succ [| 7 |]);
  (* More tasks than domains: the queue must feed every worker. *)
  Alcotest.(check (array int)) "tasks >> domains"
    (Array.init 200 succ)
    (Nyx_parallel.Pool.map ~domains:2 succ (Array.init 200 Fun.id))

let test_exception_carries_index () =
  let run domains =
    match
      Nyx_parallel.Pool.map ~domains
        (fun x -> if x = 7 then failwith "boom" else x)
        (Array.init 16 Fun.id)
    with
    | _ -> Alcotest.fail "expected Task_error"
    | exception Nyx_parallel.Pool.Task_error { index; exn = Failure m } ->
      check_int "failing task index" 7 index;
      Alcotest.(check string) "payload" "boom" m
    | exception e -> Alcotest.fail ("wrong exception: " ^ Printexc.to_string e)
  in
  (* Same surfaced failure on the sequential and the pooled path. *)
  run 1;
  run 4

let test_exception_reports_lowest_index () =
  match
    Nyx_parallel.Pool.map ~domains:4
      (fun x -> if x >= 5 then failwith "multi" else x)
      (Array.init 32 Fun.id)
  with
  | _ -> Alcotest.fail "expected Task_error"
  | exception Nyx_parallel.Pool.Task_error { index; _ } ->
    check_int "lowest failing index wins" 5 index

let test_submit_wait () =
  let counter = Atomic.make 0 in
  Nyx_parallel.Pool.with_pool ~domains:3 (fun pool ->
      check_int "pool size" 3 (Nyx_parallel.Pool.size pool);
      for _ = 1 to 50 do
        Nyx_parallel.Pool.submit pool (fun () -> Atomic.incr counter)
      done;
      Nyx_parallel.Pool.wait pool;
      check_int "all jobs ran" 50 (Atomic.get counter));
  (* with_pool shut the pool down; reuse must be rejected, not deadlock. *)
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      Nyx_parallel.Pool.with_pool ~domains:2 (fun pool ->
          Nyx_parallel.Pool.shutdown pool;
          Nyx_parallel.Pool.submit pool (fun () -> ())))

(* Batched submission: results and error contract are identical at any
   batch size (chunks only amortize wake-ups). *)

let test_batch_preserves_order () =
  let input = Array.init 100 Fun.id in
  let expected = Array.map (fun x -> (3 * x) - 1) input in
  List.iter
    (fun batch ->
      let got =
        Nyx_parallel.Pool.map ~domains:4 ~batch (fun x -> (3 * x) - 1) input
      in
      Alcotest.(check (array int)) (Printf.sprintf "batch=%d" batch) expected got)
    [ 1; 2; 3; 7; 100; 1000 ]

let test_batch_odd_remainder () =
  (* 7 tasks in chunks of 3: two full chunks plus a remainder of 1. *)
  Alcotest.(check (array int)) "n=7 batch=3"
    (Array.init 7 succ)
    (Nyx_parallel.Pool.map ~domains:2 ~batch:3 succ (Array.init 7 Fun.id));
  (* Degenerate batch values behave as 1. *)
  Alcotest.(check (array int)) "batch=0"
    (Array.init 5 succ)
    (Nyx_parallel.Pool.map ~domains:2 ~batch:0 succ (Array.init 5 Fun.id))

let test_batch_error_index () =
  List.iter
    (fun batch ->
      match
        Nyx_parallel.Pool.map ~domains:4 ~batch
          (fun x -> if x >= 11 then failwith "boom" else x)
          (Array.init 32 Fun.id)
      with
      | _ -> Alcotest.fail "expected Task_error"
      | exception Nyx_parallel.Pool.Task_error { index; exn = Failure m } ->
        check_int (Printf.sprintf "lowest real index, batch=%d" batch) 11 index;
        Alcotest.(check string) "payload" "boom" m
      | exception e -> Alcotest.fail ("wrong exception: " ^ Printexc.to_string e))
    [ 1; 3; 5; 32 ]

let test_map_pool_reuse () =
  (* One persistent pool, many fan-out rounds — the fleet's sync-epoch
     usage pattern. *)
  Nyx_parallel.Pool.with_pool ~domains:3 (fun pool ->
      for round = 1 to 5 do
        let got =
          Nyx_parallel.Pool.map_pool pool ~batch:4
            (fun x -> (round * 100) + x)
            (Array.init 10 Fun.id)
        in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.init 10 (fun i -> (round * 100) + i))
          got
      done;
      (* Error contract holds on the shared pool too, and the pool stays
         usable afterwards. *)
      (match
         Nyx_parallel.Pool.map_pool pool ~batch:2
           (fun x -> if x = 4 then failwith "mid" else x)
           (Array.init 8 Fun.id)
       with
      | _ -> Alcotest.fail "expected Task_error"
      | exception Nyx_parallel.Pool.Task_error { index; _ } ->
        check_int "failing index on shared pool" 4 index);
      Alcotest.(check (array int)) "pool survives task failure"
        [| 0; 2; 4 |]
        (Nyx_parallel.Pool.map_pool pool (fun x -> 2 * x) [| 0; 1; 2 |]))

let test_submit_all_batches () =
  let counter = Atomic.make 0 in
  Nyx_parallel.Pool.with_pool ~domains:2 (fun pool ->
      Nyx_parallel.Pool.submit_all pool
        (List.init 64 (fun _ () -> Atomic.incr counter));
      Nyx_parallel.Pool.wait pool;
      check_int "all batched jobs ran" 64 (Atomic.get counter));
  Alcotest.check_raises "submit_all after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      Nyx_parallel.Pool.with_pool ~domains:2 (fun pool ->
          Nyx_parallel.Pool.shutdown pool;
          Nyx_parallel.Pool.submit_all pool [ (fun () -> ()) ]))

let test_env_knob () =
  Unix.putenv "NYX_DOMAINS" "3";
  check_int "NYX_DOMAINS honoured" 3 (Nyx_parallel.Pool.default_domains ());
  Unix.putenv "NYX_DOMAINS" "0";
  check_int "invalid falls back to recommended"
    (Nyx_parallel.Pool.recommended ())
    (Nyx_parallel.Pool.default_domains ());
  Unix.putenv "NYX_DOMAINS" "garbage";
  check_int "garbage falls back to recommended"
    (Nyx_parallel.Pool.recommended ())
    (Nyx_parallel.Pool.default_domains ());
  Unix.putenv "NYX_DOMAINS" "4";
  check_int "explicit argument beats the env" 2
    (Array.length (Nyx_parallel.Pool.map ~domains:1 Fun.id [| 1; 2 |]));
  Unix.putenv "NYX_DOMAINS" "1"

(* Cross-layer determinism *)

let echo_entry () = Option.get (Nyx_targets.Registry.find "echo")

let small_config =
  {
    Campaign.default_config with
    Campaign.budget_ns = 2_000_000_000;
    max_execs = 600;
    policy = Policy.Balanced;
    seed = 5;
  }

let test_fleet_domains_deterministic () =
  let entry = echo_entry () in
  (* The issue's exact contract: NYX_DOMAINS=4 == NYX_DOMAINS=1. *)
  Unix.putenv "NYX_DOMAINS" "4";
  let par = Fleet.run ~instances:4 ~config:small_config entry in
  Unix.putenv "NYX_DOMAINS" "1";
  let seq = Fleet.run ~instances:4 ~config:small_config entry in
  check_int "instances" seq.Fleet.instances par.Fleet.instances;
  Alcotest.(check (option int)) "first solve" seq.Fleet.first_solve_ns
    par.Fleet.first_solve_ns;
  check_int "solves" seq.Fleet.solves par.Fleet.solves;
  check_int "total execs" seq.Fleet.total_execs par.Fleet.total_execs;
  Alcotest.(check bool) "wall clock measured" true
    (seq.Fleet.wall_s >= 0.0 && par.Fleet.wall_s >= 0.0)

let test_parallel_campaigns_match_sequential () =
  let entry = echo_entry () in
  let seeds = [ 1; 2; 3; 4 ] in
  let run seed = Campaign.run { small_config with Campaign.seed } entry in
  let seq = List.map run seeds in
  let par = Nyx_parallel.Pool.map_list ~domains:4 run seeds in
  List.iter2
    (fun a b ->
      check_int "edges" a.Report.final_edges b.Report.final_edges;
      check_int "execs" a.Report.execs b.Report.execs;
      check_int "virtual time" a.Report.virtual_ns b.Report.virtual_ns;
      check_int "corpus" a.Report.corpus_size b.Report.corpus_size)
    seq par

let test_same_seed_campaigns_identical () =
  let entry = echo_entry () in
  let a = Campaign.run small_config entry in
  let b = Campaign.run small_config entry in
  check_int "edges" a.Report.final_edges b.Report.final_edges;
  check_int "execs" a.Report.execs b.Report.execs;
  check_int "virtual time" a.Report.virtual_ns b.Report.virtual_ns;
  check_int "corpus" a.Report.corpus_size b.Report.corpus_size;
  Alcotest.(check (list string)) "crash kinds"
    (List.map (fun c -> c.Report.kind) a.Report.crashes)
    (List.map (fun c -> c.Report.kind) b.Report.crashes)

let () =
  Alcotest.run "nyx_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
          Alcotest.test_case "map_list preserves order" `Quick
            test_map_list_preserves_order;
          Alcotest.test_case "edge sizes" `Quick test_map_edge_sizes;
          Alcotest.test_case "exception carries index" `Quick
            test_exception_carries_index;
          Alcotest.test_case "lowest failing index" `Quick
            test_exception_reports_lowest_index;
          Alcotest.test_case "submit/wait/shutdown" `Quick test_submit_wait;
          Alcotest.test_case "batch preserves order" `Quick
            test_batch_preserves_order;
          Alcotest.test_case "batch odd remainders" `Quick
            test_batch_odd_remainder;
          Alcotest.test_case "batch error index" `Quick test_batch_error_index;
          Alcotest.test_case "map_pool reuse" `Quick test_map_pool_reuse;
          Alcotest.test_case "submit_all" `Quick test_submit_all_batches;
          Alcotest.test_case "NYX_DOMAINS knob" `Quick test_env_knob;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fleet: 4 domains == 1 domain" `Quick
            test_fleet_domains_deterministic;
          Alcotest.test_case "parallel campaigns == sequential" `Quick
            test_parallel_campaigns_match_sequential;
          Alcotest.test_case "same-seed campaigns identical" `Quick
            test_same_seed_campaigns_identical;
        ] );
    ]
