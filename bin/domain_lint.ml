(* domain-lint: scan OCaml sources for top-level mutable state that lacks
   the repo's domain-safety annotation (see Nyx_analysis.Source_lint).
   Usage: domain_lint [DIR|FILE]...  (default: lib). Exit 1 on findings. *)

let () =
  let roots =
    match Array.to_list Sys.argv with [] | [ _ ] -> [ "lib" ] | _ :: r -> r
  in
  let files =
    List.concat_map Nyx_analysis.Source_lint.ml_files_under roots
    |> List.sort compare
  in
  let findings = List.concat_map Nyx_analysis.Source_lint.lint_file files in
  List.iter (fun f -> Format.printf "%a@." Nyx_analysis.Source_lint.pp_finding f) findings;
  if findings <> [] then begin
    Format.printf "domain-lint: %d finding(s) in %d file(s) scanned@."
      (List.length findings) (List.length files);
    exit 1
  end;
  Format.printf "domain-lint: clean (%d file(s) scanned)@." (List.length files)
