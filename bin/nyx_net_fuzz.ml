(* nyx-net-fuzz: command-line front end.

   Mirrors the five-step workflow of the paper's §5.4 case study:
   pick a target, pick or use the default raw-packet spec, optionally
   import a capture as seeds, and run the fuzzer. *)

open Cmdliner

let targets_doc =
  "Available targets: "
  ^ String.concat ", "
      (List.map
         (fun e -> e.Nyx_targets.Registry.target.Nyx_targets.Target.info.Nyx_targets.Target.name)
         (Nyx_targets.Registry.all ()))

(* Common arguments *)

let target_arg =
  let doc = "Fuzz target name. " ^ targets_doc in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET" ~doc)

let policy_arg =
  let doc = "Snapshot placement policy: none, balanced, aggressive or dynamic." in
  Arg.(value & opt string "aggressive" & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)

let budget_arg =
  let doc = "Virtual-time budget in seconds." in
  Arg.(value & opt float 30.0 & info [ "b"; "budget" ] ~docv:"SECONDS" ~doc)

let max_execs_arg =
  let doc = "Maximum number of executions." in
  Arg.(value & opt int 200_000 & info [ "max-execs" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Campaign random seed." in
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let asan_arg =
  let doc = "Enable the address-sanitizer analogue (bounds-checked heap)." in
  Arg.(value & flag & info [ "asan" ] ~doc)

let fuzzer_arg =
  let doc = "Fuzzer: nyx (default), aflnet, aflnet-no-state, aflnwe, afl++." in
  Arg.(value & opt string "nyx" & info [ "f"; "fuzzer" ] ~docv:"FUZZER" ~doc)

let seeds_arg =
  let doc = "Capture file ($(b,npcap) format) to import as seeds." in
  Arg.(value & opt (some file) None & info [ "seeds" ] ~docv:"FILE" ~doc)

let lookup_target name =
  match Nyx_targets.Registry.find name with
  | Some entry -> Ok entry
  | None -> Error (`Msg (Printf.sprintf "unknown target %S. %s" name targets_doc))

let print_result r =
  Format.printf "%a@." Nyx_core.Report.pp_summary r;
  List.iter
    (fun c ->
      Format.printf "  crash: %-18s at exec %-8d vtime %a@.         %s@."
        c.Nyx_core.Report.kind c.Nyx_core.Report.found_exec Nyx_sim.Clock.pp_duration
        c.Nyx_core.Report.found_ns c.Nyx_core.Report.detail)
    r.Nyx_core.Report.crashes;
  (match r.Nyx_core.Report.snapshot_stats with
  | Some s ->
    Format.printf
      "  snapshots: %d root restores, %d incremental created, %d incremental restores, %d remirrors@."
      s.Nyx_snapshot.Engine.root_restores s.Nyx_snapshot.Engine.incremental_creates
      s.Nyx_snapshot.Engine.incremental_restores s.Nyx_snapshot.Engine.remirrors
  | None -> ());
  (match r.Nyx_core.Report.placement with
  | Some p ->
    Format.printf
      "  placement: %d state probes, %d boundaries, %d moves, %d entries placed@."
      p.Nyx_core.Report.probes p.Nyx_core.Report.boundary_count
      p.Nyx_core.Report.moves
      (List.length p.Nyx_core.Report.placements)
  | None -> ());
  (match r.Nyx_core.Report.mutation with
  | Some m when m.Nyx_core.Report.engine <> "havoc" ->
    Format.printf "  mutation engine: %s@." m.Nyx_core.Report.engine;
    List.iter
      (fun (s : Nyx_core.Report.mutator_stat) ->
        Format.printf
          "    %-8s %7d attempts, %6d rejected, %5d accepts, credit %.3f@."
          s.Nyx_core.Report.mut_name s.Nyx_core.Report.mut_attempts
          s.Nyx_core.Report.mut_rejected s.Nyx_core.Report.mut_accepts
          s.Nyx_core.Report.mut_credit)
      m.Nyx_core.Report.mutators
  | _ -> ());
  (match r.Nyx_core.Report.resilience with
  | Some res -> Format.printf "%a@." Nyx_core.Report.pp_resilience res
  | None -> ());
  (match r.Nyx_core.Report.peer with
  | Some p -> Format.printf "  %a@." Nyx_core.Report.pp_peer p
  | None -> ());
  match r.Nyx_core.Report.solved_ns with
  | Some t -> Format.printf "  level solved at vtime %a@." Nyx_sim.Clock.pp_duration t
  | None -> ()

let load_seeds entry path =
  match path with
  | None -> Ok None
  | Some path -> (
    match Nyx_pcap.Capture.load path with
    | Error m -> Error (`Msg ("cannot load capture: " ^ m))
    | Ok cap ->
      let ns = Nyx_core.Campaign.net_spec () in
      let dissector =
        entry.Nyx_targets.Registry.target.Nyx_targets.Target.info.Nyx_targets.Target.dissector
      in
      Ok (Some [ Nyx_pcap.Importer.to_seed ns dissector cap ]))

(* fuzz command *)

let crash_dir_arg =
  let doc = "Directory to save crash reproducers into (one file per crash kind)." in
  Arg.(value & opt (some string) None & info [ "crash-dir" ] ~docv:"DIR" ~doc)

let save_crashes dir (r : Nyx_core.Report.campaign_result) =
  match dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun c ->
        let path =
          Filename.concat dir (Printf.sprintf "%s_%s.bin" r.Nyx_core.Report.target
                                 c.Nyx_core.Report.kind)
        in
        let oc = open_out_bin path in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
            output_bytes oc c.Nyx_core.Report.input);
        Format.printf "  saved reproducer: %s@." path)
      r.Nyx_core.Report.crashes

let faults_arg =
  let doc =
    "Deterministic fault-injection spec, e.g. $(b,all:0.01) or \
     $(b,restore-fail:0.05,wedge:0.001) (overrides NYX_FAULTS)."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)

let mode_arg =
  let doc =
    "Campaign mode: $(b,bytecode) (default; program payloads are raw wire \
     bytes) or $(b,peer) (payloads drive a scripted protocol-correct peer \
     whose encoder carries typed fault sites; requires a target with a peer \
     script — see $(b,--peer-faults))."
  in
  Arg.(value & opt string "bytecode" & info [ "mode" ] ~docv:"MODE" ~doc)

let peer_faults_arg =
  let doc =
    "Peer encoder fault spec for $(b,--mode peer), e.g. $(b,all:0.5) or \
     $(b,length-lie:1.0,truncate:0.2). Sites: flip, truncate, duplicate, \
     length-lie, desync-frame, drop-field."
  in
  Arg.(value & opt (some string) None & info [ "peer-faults" ] ~docv:"SPEC" ~doc)

let checkpoint_arg =
  let doc = "Write a crash-safe campaign checkpoint to $(docv) periodically." in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let checkpoint_interval_arg =
  let doc = "Virtual seconds between checkpoint writes." in
  Arg.(
    value & opt float 5.0 & info [ "checkpoint-interval" ] ~docv:"SECONDS" ~doc)

let engine_arg =
  let doc =
    "Mutation engine: $(b,havoc) (byte/structural mutators, the default) or \
     $(b,typed) (adds typestate splicing and spec-driven generation over the \
     affine IR, with coverage-credit weighting)."
  in
  Arg.(value & opt string "havoc" & info [ "engine" ] ~docv:"ENGINE" ~doc)

let mutator_weights_arg =
  let doc =
    "Per-mutator base-weight overrides, e.g. $(b,havoc:1,splice:2,generate:0.5). \
     Names must exist in the selected --engine."
  in
  Arg.(value & opt (some string) None & info [ "mutator-weights" ] ~docv:"W" ~doc)

let parse_engine name =
  Result.map_error (fun m -> `Msg m) (Nyx_core.Engines.of_name name)

let parse_mutator_weights = function
  | None -> Ok []
  | Some s ->
    Result.map_error
      (fun m -> `Msg ("bad --mutator-weights: " ^ m))
      (Nyx_core.Engines.parse_weights s)

let parse_faults = function
  | None -> Ok None
  | Some spec ->
    Result.map_error
      (fun m -> `Msg ("bad --faults spec: " ^ m))
      (Result.map Option.some (Nyx_resilience.Plan.parse_spec spec))

(* Resolve --mode/--peer-faults into the optional peer script + encoder
   fault spec Campaign.run expects. *)
let parse_peer ~target ~mode ~peer_faults =
  let ( let* ) = Result.bind in
  match mode with
  | "bytecode" ->
    if peer_faults <> None then
      Error (`Msg "--peer-faults requires --mode peer")
    else Ok (None, None)
  | "peer" ->
    let* script =
      match Nyx_peer.Peer_script.find target with
      | Some s -> Ok s
      | None ->
        Error
          (`Msg
             (Printf.sprintf
                "target %S has no peer script; peer mode supports: %s" target
                (String.concat ", " (Nyx_peer.Peer_script.supported ()))))
    in
    let* faults =
      match peer_faults with
      | None -> Ok None
      | Some spec ->
        Result.map_error
          (fun m -> `Msg ("bad --peer-faults spec: " ^ m))
          (Result.map Option.some (Nyx_peer.Peer_fault.parse_spec spec))
    in
    Ok (Some script, faults)
  | m -> Error (`Msg (Printf.sprintf "unknown --mode %S (bytecode or peer)" m))

let make_checkpointing path interval =
  match path with
  | None -> None
  | Some path ->
    Some
      (Nyx_core.Campaign.checkpointing ~path
         ~interval_ns:(int_of_float (interval *. 1e9))
         ())

let fuzz_cmd =
  let run target fuzzer policy budget max_execs seed asan seeds_file crash_dir
      faults mode peer_faults ck_path ck_interval engine_name weights =
    let ( let* ) = Result.bind in
    let result =
      let* entry = lookup_target target in
      let* seeds = load_seeds entry seeds_file in
      let* faults = parse_faults faults in
      let* peer, peer_fault_spec = parse_peer ~target ~mode ~peer_faults in
      let budget_ns = int_of_float (budget *. 1e9) in
      if fuzzer = "nyx" then begin
        let* policy =
          Result.map_error (fun m -> `Msg m) (Nyx_core.Policy.of_name policy)
        in
        let* engine = parse_engine engine_name in
        let* mutator_weights = parse_mutator_weights weights in
        let cfg =
          {
            Nyx_core.Campaign.default_config with
            Nyx_core.Campaign.policy;
            budget_ns;
            max_execs;
            seed;
            asan;
            engine;
            mutator_weights;
          }
        in
        match
          Nyx_core.Campaign.run ?seeds ?faults ?peer
            ?peer_faults:peer_fault_spec
            ?checkpoint:(make_checkpointing ck_path ck_interval) cfg entry
        with
        | r -> Ok (Some r)
        | exception Invalid_argument m ->
          (* e.g. a malformed NYX_FAULTS spec from the environment *)
          Error (`Msg m)
      end
      else if peer <> None then
        Error (`Msg "--mode peer is nyx-only (baseline fuzzers mutate raw bytes)")
      else begin
        let* spec =
          match
            List.find_opt (fun s -> s.Nyx_baselines.Fuzzers.name = fuzzer)
              Nyx_baselines.Fuzzers.all
          with
          | Some s -> Ok s
          | None -> Error (`Msg (Printf.sprintf "unknown fuzzer %S" fuzzer))
        in
        Ok (Nyx_baselines.Fuzzers.run spec ~budget_ns ~max_execs ~seed entry)
      end
    in
    match result with
    | Error (`Msg m) -> `Error (false, m)
    | Ok None ->
      Format.printf "n/a: %s cannot run this target@." fuzzer;
      `Ok ()
    | Ok (Some r) ->
      print_result r;
      save_crashes crash_dir r;
      `Ok ()
  in
  let doc = "Fuzz a target and report coverage and crashes." in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(
      ret
        (const run $ target_arg $ fuzzer_arg $ policy_arg $ budget_arg $ max_execs_arg
       $ seed_arg $ asan_arg $ seeds_arg $ crash_dir_arg $ faults_arg
       $ mode_arg $ peer_faults_arg $ checkpoint_arg $ checkpoint_interval_arg
       $ engine_arg $ mutator_weights_arg))

(* resume command: continue a campaign from a crash-safe checkpoint *)

let resume_cmd =
  let ckpt_arg =
    let doc = "Checkpoint file written by fuzz --checkpoint." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CHECKPOINT" ~doc)
  in
  let run target ckpt_path crash_dir ck_path ck_interval =
    let ( let* ) = Result.bind in
    let result =
      let* entry = lookup_target target in
      let* ckpt =
        Result.map_error
          (fun m -> `Msg ("cannot load checkpoint: " ^ m))
          (Nyx_core.Checkpoint.load ckpt_path)
      in
      (* Keep checkpointing to the same file unless told otherwise, so a
         resumed campaign is itself crash-safe. *)
      let ck_path = match ck_path with Some p -> Some p | None -> Some ckpt_path in
      match
        Nyx_core.Campaign.resume
          ?checkpoint:(make_checkpointing ck_path ck_interval) ckpt entry
      with
      | r -> Ok r
      | exception Invalid_argument m -> Error (`Msg m)
    in
    match result with
    | Error (`Msg m) -> `Error (false, m)
    | Ok r ->
      print_result r;
      save_crashes crash_dir r;
      `Ok ()
  in
  let doc =
    "Resume a campaign from a checkpoint; the final result is bit-identical \
     to the uninterrupted run's."
  in
  Cmd.v
    (Cmd.info "resume" ~doc)
    Term.(
      ret
        (const run $ target_arg $ ckpt_arg $ crash_dir_arg $ checkpoint_arg
       $ checkpoint_interval_arg))

(* list command *)

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        let i = e.Nyx_targets.Registry.target.Nyx_targets.Target.info in
        Format.printf "%-14s port %-5d %-4s %s@." i.Nyx_targets.Target.name
          i.Nyx_targets.Target.port
          (match i.Nyx_targets.Target.proto with
          | Nyx_netemu.Net.Tcp -> "tcp"
          | Nyx_netemu.Net.Udp -> "udp"
          | Nyx_netemu.Net.Unix_sock -> "unix")
          (if i.Nyx_targets.Target.desock_compat then "" else "(no desock)"))
      (Nyx_targets.Registry.all ());
    `Ok ()
  in
  let doc = "List available fuzz targets." in
  Cmd.v (Cmd.info "list" ~doc) Term.(ret (const run $ const ()))

(* mario command *)

let mario_cmd =
  let level_arg =
    let doc = "Level name, e.g. 1-1 … 8-4." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LEVEL" ~doc)
  in
  let run level policy budget max_execs seed =
    match Nyx_mario.Level.find level with
    | None -> `Error (false, Printf.sprintf "unknown level %S (1-1 … 8-4)" level)
    | Some lvl -> (
      match Nyx_core.Policy.of_name policy with
      | Error m -> `Error (false, m)
      | Ok policy ->
        let entry =
          {
            Nyx_targets.Registry.target = Nyx_mario.Mario_target.target lvl;
            seeds = Nyx_mario.Mario_target.seeds lvl;
          }
        in
        let cfg =
          {
            Nyx_core.Campaign.default_config with
            Nyx_core.Campaign.policy;
            budget_ns = int_of_float (budget *. 1e9);
            max_execs;
            seed;
            stop_on_solve = true;
          }
        in
        let r = Nyx_core.Campaign.run cfg entry in
        print_result r;
        `Ok ())
  in
  let doc = "Fuzz a Super Mario level until it is solved (§5.3)." in
  let budget =
    Arg.(value & opt float 7200.0 & info [ "b"; "budget" ] ~docv:"SECONDS" ~doc:"Virtual budget.")
  in
  Cmd.v
    (Cmd.info "mario" ~doc)
    Term.(ret (const run $ level_arg $ policy_arg $ budget $ max_execs_arg $ seed_arg))

(* record command: write a target's canned traffic as a capture file *)

let record_cmd =
  let out_arg =
    let doc = "Output capture path." in
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run target out =
    match lookup_target target with
    | Error (`Msg m) -> `Error (false, m)
    | Ok entry ->
      Nyx_pcap.Capture.save (Nyx_targets.Registry.seed_capture entry) out;
      Format.printf "wrote %s@." out;
      `Ok ()
  in
  let doc = "Dump a target's canned seed traffic as a capture file." in
  Cmd.v (Cmd.info "record" ~doc) Term.(ret (const run $ target_arg $ out_arg))

(* replay command: run a serialized reproducer against a target *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      Bytes.of_string (really_input_string ic (in_channel_length ic)))

let replay_cmd =
  let input_arg =
    let doc = "Serialized reproducer program (as written by fuzz --save-crashes)." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"INPUT" ~doc)
  in
  let minimize_arg =
    let doc = "Minimize the reproducer before reporting (afl-tmin style)." in
    Arg.(value & flag & info [ "m"; "minimize" ] ~doc)
  in
  let run target input minimize =
    match lookup_target target with
    | Error (`Msg m) -> `Error (false, m)
    | Ok entry -> (
      let ns = Nyx_core.Campaign.net_spec () in
      match Nyx_spec.Program.parse ns.Nyx_spec.Net_spec.spec (read_file input) with
      | Error m -> `Error (false, "cannot parse reproducer: " ^ m)
      | Ok program -> (
        let exec = Nyx_core.Executor.create ~net_spec:ns entry.Nyx_targets.Registry.target in
        let r = Nyx_core.Executor.run_full exec program in
        (match r.Nyx_core.Report.status with
        | Nyx_core.Report.Pass -> Format.printf "result: pass (no crash)@."
        | Nyx_core.Report.Hang -> Format.printf "result: hang@."
        | Nyx_core.Report.Crash { kind; detail } ->
          Format.printf "result: crash %s (%s)@." kind detail);
        match (minimize, r.Nyx_core.Report.status) with
        | true, Nyx_core.Report.Crash { kind; _ } ->
          let minimized, execs =
            Nyx_core.Minimizer.minimize
              ~run:(Nyx_core.Executor.run_full exec)
              ~keep:(Nyx_core.Minimizer.keep_crash_kind kind)
              program
          in
          Format.printf "minimized from %d to %d bytes in %d executions:@.%a@."
            (Nyx_core.Minimizer.serialized_size program)
            (Nyx_core.Minimizer.serialized_size minimized)
            execs Nyx_spec.Program.pp minimized;
          `Ok ()
        | true, _ -> `Error (false, "nothing to minimize: the input does not crash")
        | false, _ ->
          Format.printf "%a@." Nyx_spec.Program.pp program;
          `Ok ()))
  in
  let doc = "Replay (and optionally minimize) a serialized reproducer." in
  Cmd.v (Cmd.info "replay" ~doc) Term.(ret (const run $ target_arg $ input_arg $ minimize_arg))

(* profile command: run a short profiled campaign and render the per-phase
   snapshot-cost breakdown (lib/obs Profile) *)

let profile_cmd =
  let json_arg =
    let doc = "Emit the profile as JSON on stdout instead of the table." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let out_arg =
    let doc = "Also write the profile JSON (with campaign metadata) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let profile_json (r : Nyx_core.Report.campaign_result) snap =
    Printf.sprintf
      "{\"target\":%S,\"fuzzer\":%S,\"seed\":%d,\"execs\":%d,\"edges\":%d,\"virtual_ns\":%d,\"wall_s\":%.6f,\"profile\":%s}"
      r.Nyx_core.Report.target r.Nyx_core.Report.fuzzer r.Nyx_core.Report.run_seed
      r.Nyx_core.Report.execs r.Nyx_core.Report.final_edges r.Nyx_core.Report.virtual_ns
      r.Nyx_core.Report.wall_s
      (Nyx_obs.Profile.to_json snap)
  in
  let run target policy budget max_execs seed json out =
    let ( let* ) = Result.bind in
    let result =
      let* entry = lookup_target target in
      let* policy =
        Result.map_error (fun m -> `Msg m) (Nyx_core.Policy.of_name policy)
      in
      let cfg =
        {
          Nyx_core.Campaign.default_config with
          Nyx_core.Campaign.policy;
          budget_ns = int_of_float (budget *. 1e9);
          max_execs;
          seed;
        }
      in
      Ok (Nyx_core.Campaign.run ~profile:true cfg entry)
    in
    match result with
    | Error (`Msg m) -> `Error (false, m)
    | Ok r -> (
      match r.Nyx_core.Report.phase_profile with
      | None -> `Error (false, "campaign returned no profile (internal error)")
      | Some snap ->
        if json then print_endline (profile_json r snap)
        else begin
          Format.printf "%s  %s  seed %d: %d execs, %d edges, vtime %a@."
            r.Nyx_core.Report.target r.Nyx_core.Report.fuzzer r.Nyx_core.Report.run_seed
            r.Nyx_core.Report.execs r.Nyx_core.Report.final_edges
            Nyx_sim.Clock.pp_duration r.Nyx_core.Report.virtual_ns;
          Format.printf "%a@." Nyx_obs.Profile.pp snap
        end;
        (match out with
        | None -> ()
        | Some path ->
          let oc = open_out path in
          Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
              output_string oc (profile_json r snap);
              output_char oc '\n');
          if not json then Format.printf "wrote %s@." path);
        `Ok ())
  in
  let doc =
    "Run a profiled campaign and print the per-phase cost breakdown \
     (reset / prefix-replay / suffix-exec / snapshot-create / cov-merge / \
     trim), the paper's Table 3 applied to ourselves."
  in
  let budget =
    Arg.(
      value & opt float 10.0
      & info [ "b"; "budget" ] ~docv:"SECONDS" ~doc:"Virtual-time budget in seconds.")
  in
  Cmd.v
    (Cmd.info "profile" ~doc)
    Term.(
      ret
        (const run $ target_arg $ policy_arg $ budget $ max_execs_arg $ seed_arg
       $ json_arg $ out_arg))

(* lint command: static analysis over spec declarations, seed programs and
   optional captures (the Nyx_analysis passes) *)

let lint_cmd =
  let all_arg =
    let doc = "Audit every registered target (the default when no TARGET is given)." in
    Arg.(value & flag & info [ "all-targets" ] ~doc)
  in
  let json_arg =
    let doc = "Emit the findings report as JSON." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let graph_dot_arg =
    let doc =
      "Write the static protocol state graphs of the audited specs (Graphviz \
       DOT, one digraph per spec) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "graph-dot" ] ~docv:"PATH" ~doc)
  in
  let graph_json_arg =
    let doc =
      "Write the static protocol state graphs of the audited specs (JSON \
       array) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "graph-json" ] ~docv:"PATH" ~doc)
  in
  let lint_target_arg =
    let doc = "Audit a single target's seed programs. " ^ targets_doc in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"TARGET" ~doc)
  in
  let run all json graph_dot graph_json target seeds_file =
    let ( let* ) = Result.bind in
    let ns = Nyx_core.Campaign.net_spec () in
    let ipc = Nyx_targets.Ipc_spec.create () in
    let entry_name e =
      e.Nyx_targets.Registry.target.Nyx_targets.Target.info.Nyx_targets.Target.name
    in
    let audit_seeds entry =
      let udp =
        entry.Nyx_targets.Registry.target.Nyx_targets.Target.info
          .Nyx_targets.Target.proto = Nyx_netemu.Net.Udp
      in
      List.mapi
        (fun i p ->
          Nyx_analysis.Audit.program ~udp
            ~subject:(Printf.sprintf "%s/seed[%d]" (entry_name entry) i)
            p)
        (Nyx_targets.Registry.seed_programs entry ns)
    in
    let result =
      let* entries =
        if all || target = None then Ok (Nyx_targets.Registry.all ())
        else
          let* e = lookup_target (Option.get target) in
          Ok [ e ]
      in
      let* capture_entries =
        match seeds_file with
        | None -> Ok []
        | Some path -> (
          match Nyx_pcap.Capture.load path with
          | Error m -> Error (`Msg ("cannot load capture: " ^ m))
          | Ok cap ->
            let dissector =
              match entries with
              | [ e ] ->
                e.Nyx_targets.Registry.target.Nyx_targets.Target.info
                  .Nyx_targets.Target.dissector
              | _ -> Nyx_pcap.Dissector.Raw
            in
            Ok
              [
                Nyx_analysis.Audit.capture
                  ~subject:
                    (Printf.sprintf "capture %s (%s)" path
                       (Nyx_pcap.Dissector.name dissector))
                  ns dissector cap;
              ])
      in
      let spec_audit s =
        Nyx_analysis.Audit.spec
          ~subject:(Printf.sprintf "spec %s" (Nyx_spec.Spec.name s))
          s
      in
      Ok
        (Nyx_analysis.Audit.of_entries
           (spec_audit ns.Nyx_spec.Net_spec.spec
            :: spec_audit ipc.Nyx_targets.Ipc_spec.spec
            :: Nyx_analysis.Audit.program ~subject:"firefox-ipc-typed/seed"
                 (Nyx_targets.Ipc_spec.seed ipc)
            :: (List.concat_map audit_seeds entries @ capture_entries)))
    in
    match result with
    | Error (`Msg m) -> `Error (false, m)
    | Ok audit ->
      let specs = [ ns.Nyx_spec.Net_spec.spec; ipc.Nyx_targets.Ipc_spec.spec ] in
      let write path content =
        let oc = open_out path in
        output_string oc content;
        close_out oc;
        if not json then Format.printf "wrote %s@." path
      in
      Option.iter
        (fun path ->
          write path
            (String.concat "\n"
               (List.map
                  (fun s -> Nyx_analysis.State_graph.(to_dot (build s)))
                  specs)))
        graph_dot;
      Option.iter
        (fun path ->
          write path
            ("["
            ^ String.concat ","
                (List.map
                   (fun s -> Nyx_analysis.State_graph.(to_json (build s)))
                   specs)
            ^ "]"))
        graph_json;
      if json then print_endline (Nyx_analysis.Audit.to_json audit)
      else Format.printf "%a" Nyx_analysis.Audit.pp audit;
      (* Lint failure is exit code 1 (distinct from cmdliner's CLI-error
         codes): errors fail the build, warnings do not. *)
      if not (Nyx_analysis.Audit.is_clean audit) then exit 1;
      `Ok ()
  in
  let doc =
    "Statically analyse spec declarations, seed programs and captures: the \
     program verifier and spec linter of the nyx_analysis layer."
  in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(
      ret
        (const run $ all_arg $ json_arg $ graph_dot_arg $ graph_json_arg
       $ lint_target_arg $ seeds_arg))

let main =
  let doc = "Nyx-Net: network fuzzing with incremental snapshots (OCaml reproduction)" in
  Cmd.group
    (Cmd.info "nyx-net-fuzz" ~doc)
    [
      fuzz_cmd; resume_cmd; list_cmd; mario_cmd; record_cmd; replay_cmd;
      lint_cmd; profile_cmd;
    ]

let () = exit (Cmd.eval main)
